package service

// Tests for the scaled ingest path at the service layer: concurrent
// multi-client submissions against a sharded store (dedup, per-shard
// durability, byte-identical restart re-serving), the SSE findings stream,
// wait-mode submits with the Lpod-Degraded contract, and the compaction
// admin endpoint.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/alive"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/store"
)

// newShardedServerT builds a daemon over a 4-shard store with group commit
// running — the full scaled ingest stack.
func newShardedServerT(t *testing.T, dir string) (*Server, *store.Sharded, *httptest.Server) {
	t.Helper()
	st, err := store.OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	st.StartGroupCommit(store.GroupCommitOptions{})
	srv, err := New(Config{
		Store: st,
		Seed:  1,
		Engine: engine.Config{
			Workers: 4,
			Rounds:  2,
			Verify:  alive.Options{Samples: 128, Seed: 3},
		},
	})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
		st.Close()
	})
	return srv, st, hs
}

// TestServiceShardedConcurrentRestart is the sharded extension of the PR-6
// restart-resume e2e, run with -race: N clients posting overlapping window
// sets against a 4-shard store must dedup to one engine sequence per
// window, land every record durable on the shard its key routes to, and a
// restarted daemon on the same shards re-serves every finding
// byte-identically from disk.
func TestServiceShardedConcurrentRestart(t *testing.T) {
	dir := t.TempDir()
	corpus := append([]string{knownWindow}, extraWindows...)

	_, st, hs := newShardedServerT(t, dir)
	const clients = 8
	var wg sync.WaitGroup
	bodies := make([]map[string][]byte, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Overlapping, rotated window sets: every client submits most of
			// the corpus, so every window races between several clients.
			subset := append(append([]string{}, corpus[c%len(corpus):]...), corpus[:c%len(corpus)]...)
			bodies[c] = make(map[string][]byte)
			for _, ws := range postWindows(t, hs.URL, subset...) {
				switch ws["status"] {
				case "queued", "pending", "cached":
				default:
					t.Errorf("client %d: unexpected status %+v", c, ws)
					return
				}
				bodies[c][ws["window"]] = waitFinding(t, hs.URL, ws["window"])
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for c := 1; c < clients; c++ {
		for win, data := range bodies[c] {
			if !bytes.Equal(data, bodies[0][win]) {
				t.Fatalf("clients disagree on finding %s", win)
			}
		}
	}
	stats := getStats(t, hs.URL)
	if stats.Engine.Sequences > len(corpus) {
		t.Fatalf("engine processed %d sequences for %d distinct windows: dedup leaked across shards",
			stats.Engine.Sequences, len(corpus))
	}
	if stats.Store.Shards != 4 {
		t.Fatalf("stats report %d shards, want 4", stats.Store.Shards)
	}
	if stats.Store.Findings != len(corpus) {
		t.Fatalf("store holds %d findings, want %d", stats.Store.Findings, len(corpus))
	}

	// Per-shard durability ordering: once the findings are served, each
	// record must be durable on exactly the shard its key routes to — a
	// shard's Pending drains to zero and its on-disk log holds its keys.
	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, hs.URL).Store.Pending != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("shards still pending after all findings served: %+v", st.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	for win := range bodies[0] {
		found := 0
		for i := 0; i < st.N(); i++ {
			if st.Shard(i).Has(store.KindFinding, win) {
				found++
			}
		}
		if found != 1 {
			t.Fatalf("finding %s lives on %d shards, want exactly 1", win, found)
		}
	}

	hs.Close()

	// Restart on the same shard set: everything is answered from disk,
	// byte-identical, with zero fresh engine work.
	srv2, _, hs2 := newShardedServerT(t, dir)
	_ = srv2
	for _, ws := range postWindows(t, hs2.URL, corpus...) {
		if ws["status"] != "cached" {
			t.Fatalf("resubmission not served from sharded store: %+v", ws)
		}
		if data := waitFinding(t, hs2.URL, ws["window"]); !bytes.Equal(data, bodies[0][ws["window"]]) {
			t.Fatalf("finding %s changed across sharded restart", ws["window"])
		}
	}
	if stats2 := getStats(t, hs2.URL); stats2.Engine.Sequences != 0 {
		t.Fatalf("sharded restart pushed %d sequences through the engine", stats2.Engine.Sequences)
	}
}

// sseEvent is one parsed SSE frame from the findings stream.
type sseEvent struct {
	id     string
	window string
}

// readSSE consumes the stream until want windows arrived or the deadline
// passed.
func readSSE(t *testing.T, body *bufio.Scanner, want int, deadline time.Time) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	for len(events) < want && time.Now().Before(deadline) {
		if !body.Scan() {
			break
		}
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			var payload struct {
				Window string `json:"window"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &payload); err != nil {
				t.Errorf("SSE data is not JSON: %v: %s", err, line)
				return events
			}
			cur.window = payload.Window
		case line == "":
			if cur.window != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		}
	}
	return events
}

// TestServiceFindingsStream pins the streaming contract: an SSE subscriber
// sees every durable finding exactly once with monotonic ids, a late
// subscriber with cursor=0 replays the full corpus, and the non-watch JSON
// page serves the same entries with a resumable cursor.
func TestServiceFindingsStream(t *testing.T) {
	_, _, hs := newShardedServerT(t, t.TempDir())
	corpus := append([]string{knownWindow}, extraWindows...)

	// Subscribe BEFORE submitting: the watcher must see findings as they
	// become durable.
	resp, err := http.Get(hs.URL + "/v1/findings?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch Content-Type = %q", ct)
	}

	want := make(map[string]bool)
	for _, ws := range postWindows(t, hs.URL, corpus...) {
		want[ws["window"]] = true
		waitFinding(t, hs.URL, ws["window"])
	}

	events := readSSE(t, bufio.NewScanner(resp.Body), len(corpus), time.Now().Add(30*time.Second))
	if len(events) != len(corpus) {
		t.Fatalf("subscriber saw %d findings, want %d", len(events), len(corpus))
	}
	seen := make(map[string]bool)
	lastID := 0
	for _, e := range events {
		if seen[e.window] {
			t.Fatalf("window %s streamed twice", e.window)
		}
		seen[e.window] = true
		if !want[e.window] {
			t.Fatalf("streamed unknown window %s", e.window)
		}
		var id int
		fmt.Sscanf(e.id, "%d", &id)
		if id <= lastID {
			t.Fatalf("SSE ids not monotonic: %d after %d", id, lastID)
		}
		lastID = id
	}

	// A late subscriber replaying from cursor 0 gets the whole corpus too.
	resp2, err := http.Get(hs.URL + "/v1/findings?watch=1&cursor=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replay := readSSE(t, bufio.NewScanner(resp2.Body), len(corpus), time.Now().Add(10*time.Second))
	if len(replay) != len(corpus) {
		t.Fatalf("replay subscriber saw %d findings, want %d", len(replay), len(corpus))
	}

	// The plain JSON page serves the same stream with a resumable cursor.
	var page struct {
		NextCursor int               `json:"next_cursor"`
		Findings   []json.RawMessage `json:"findings"`
	}
	resp3, err := http.Get(hs.URL + "/v1/findings")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp3.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if len(page.Findings) != len(corpus) || page.NextCursor != len(corpus) {
		t.Fatalf("JSON page: %d findings, next_cursor %d, want %d/%d",
			len(page.Findings), page.NextCursor, len(corpus), len(corpus))
	}
	resp4, err := http.Get(hs.URL + fmt.Sprintf("/v1/findings?cursor=%d", page.NextCursor))
	if err != nil {
		t.Fatal(err)
	}
	var tail struct {
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.NewDecoder(resp4.Body).Decode(&tail); err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if len(tail.Findings) != 0 {
		t.Fatalf("resumed cursor replayed %d findings, want 0", len(tail.Findings))
	}
}

// TestServiceSubmitWaitDegraded pins the Lpod-Degraded submit contract:
// wait-mode submits answer 200 once durable on a healthy store, and 202 +
// Lpod-Degraded (never a 5xx) while the store cannot commit — the record is
// accepted, pending, and counted in /v1/stats.
func TestServiceSubmitWaitDegraded(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(5, fault.Plan{fault.SiteStoreSync: {ErrorRate: 1}})
	inj.Disable()
	st, err := store.OpenWith(dir, func(f store.File) store.File { return fault.NewFile(f, inj) })
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := New(Config{Store: st, Seed: 1, Engine: chaosEngineConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// Healthy store: wait-mode submit returns 200 only after the finding is
	// durable — a crash right now must not lose it.
	body, _ := json.Marshal(map[string]any{"windows": []string{knownWindow}})
	resp, err := http.Post(hs.URL+"/v1/windows?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Lpod-Degraded") != "" {
		t.Fatalf("healthy wait submit: %d (degraded=%q), want 200", resp.StatusCode, resp.Header.Get("Lpod-Degraded"))
	}
	if st.Stats().Pending != 0 {
		t.Fatal("wait-mode 200 with records still pending")
	}

	// Store down: the submission is accepted and computed but cannot become
	// durable — 202 + Lpod-Degraded, not an error.
	inj.Enable()
	body, _ = json.Marshal(map[string]any{"windows": []string{extraWindows[0]}})
	resp, err = http.Post(hs.URL+"/v1/windows?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var reply struct {
		Windows []map[string]string `json:"windows"`
	}
	json.NewDecoder(resp.Body).Decode(&reply)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || resp.Header.Get("Lpod-Degraded") != "true" {
		t.Fatalf("degraded wait submit: %d (degraded=%q), want 202 + Lpod-Degraded",
			resp.StatusCode, resp.Header.Get("Lpod-Degraded"))
	}
	// The window resolved and serves from memory despite the dead disk.
	waitFinding(t, hs.URL, reply.Windows[0]["window"])
	stats := getStats(t, hs.URL)
	if stats.Server.DegradedAccepts == 0 {
		t.Fatal("degraded accept not counted in /v1/stats")
	}
	if stats.Store.Pending == 0 {
		t.Fatal("degraded accept left nothing pending")
	}

	// Fault clears: resubmitting with wait drains the backlog durable.
	inj.Disable()
	resp, err = http.Post(hs.URL+"/v1/windows?wait=1", "application/json",
		strings.NewReader(`{"windows":["define i8 @w9(i8 %x) { %r = sub i8 %x, 0 ret i8 %r }"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery wait submit: %d, want 200", resp.StatusCode)
	}
	if st.Stats().Pending != 0 {
		t.Fatal("post-recovery barrier left records pending")
	}
}

// TestServiceCompactEndpoint pins POST /v1/compact end to end: the rewrite
// keeps every finding and rule, reports its stats, and the compacted store
// serves identical finding bytes before and after a restart.
func TestServiceCompactEndpoint(t *testing.T) {
	dir := t.TempDir()
	corpus := append([]string{knownWindow}, extraWindows...)
	_, _, hs := newShardedServerT(t, dir)

	findings := make(map[string][]byte)
	for _, ws := range postWindows(t, hs.URL, corpus...) {
		findings[ws["window"]] = waitFinding(t, hs.URL, ws["window"])
	}

	resp, err := http.Post(hs.URL+"/v1/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Kept        int   `json:"kept"`
		Dropped     int   `json:"dropped"`
		BytesBefore int64 `json:"bytes_before"`
		BytesAfter  int64 `json:"bytes_after"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/compact: %d", resp.StatusCode)
	}
	if rep.Kept == 0 {
		t.Fatalf("compact kept nothing: %+v", rep)
	}
	stats := getStats(t, hs.URL)
	if stats.Store.Compactions == 0 {
		t.Fatal("compaction not counted in /v1/stats")
	}
	if stats.Store.Findings != len(corpus) {
		t.Fatalf("compaction dropped findings: %d, want %d", stats.Store.Findings, len(corpus))
	}
	if stats.Store.Pending != 0 {
		t.Fatalf("compaction left %d records pending", stats.Store.Pending)
	}
	for win, want := range findings {
		if got := waitFinding(t, hs.URL, win); !bytes.Equal(got, want) {
			t.Fatalf("finding %s changed across compaction", win)
		}
	}

	// Restart on the compacted shards: everything still serves from disk.
	hs.Close()
	_, _, hs2 := newShardedServerT(t, dir)
	for _, ws := range postWindows(t, hs2.URL, corpus...) {
		if ws["status"] != "cached" {
			t.Fatalf("post-compaction resubmission not cached: %+v", ws)
		}
		if got := waitFinding(t, hs2.URL, ws["window"]); !bytes.Equal(got, findings[ws["window"]]) {
			t.Fatalf("finding %s changed across compaction + restart", ws["window"])
		}
	}
}
