package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/alive"
	"repro/internal/engine"
	"repro/internal/store"
)

// knownWindow is a window the simulated provider optimizes (and/or/xor is
// xor), so a discovery run against it produces a Found finding and usually a
// learned rule — exercising every record kind in the store.
const knownWindow = `define i16 @src(i16 %x, i16 %y) {
  %a = and i16 %x, %y
  %o = or i16 %x, %y
  %r = xor i16 %a, %o
  ret i16 %r
}`

var extraWindows = []string{
	`define i8 @w1(i8 %x) { %r = add i8 %x, 0 ret i8 %r }`,
	`define i8 @w2(i8 %x) { %a = mul i8 %x, 2 %r = add i8 %a, 1 ret i8 %r }`,
	`define i32 @w3(i32 %x) { %a = xor i32 %x, -1 %r = xor i32 %a, -1 ret i32 %r }`,
}

func newServerT(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store: st,
		Seed:  1,
		Engine: engine.Config{
			Workers: 4,
			Rounds:  2,
			Verify:  alive.Options{Samples: 128, Seed: 3},
		},
	})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
		st.Close()
	})
	return srv, hs
}

func postWindows(t *testing.T, base string, windows ...string) []map[string]string {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"windows": windows})
	resp, err := http.Post(base+"/v1/windows", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/windows: %d: %s", resp.StatusCode, data)
	}
	var reply struct {
		Windows []map[string]string `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	return reply.Windows
}

// waitFinding polls GET /v1/findings until the window resolves (200) or the
// deadline passes, returning the served bytes.
func waitFinding(t *testing.T, base, window string) []byte {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/findings/" + window)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return data
		case http.StatusAccepted:
			time.Sleep(20 * time.Millisecond)
		default:
			t.Fatalf("GET /v1/findings/%s: %d: %s", window, resp.StatusCode, data)
		}
	}
	t.Fatalf("finding %s never resolved", window)
	return nil
}

func getStats(t *testing.T, base string) statsReply {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep statsReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestServiceRestartResume is the ISSUE's acceptance test: run a campaign
// through the daemon, restart it on the same store, resubmit the same
// corpus — every window must be served from the store (byte-identical
// finding bodies, rulebook unchanged) with almost no verifier work (the
// ISSUE allows <5% of the first run's executions; a full store hit needs
// none at all).
func TestServiceRestartResume(t *testing.T) {
	dir := t.TempDir()
	corpus := append([]string{knownWindow}, extraWindows...)

	// First campaign: everything is novel.
	_, hs1 := newServerT(t, dir)
	statuses := postWindows(t, hs1.URL, corpus...)
	if len(statuses) != len(corpus) {
		t.Fatalf("%d statuses for %d windows", len(statuses), len(corpus))
	}
	findings1 := make(map[string][]byte)
	for _, ws := range statuses {
		if ws["status"] != "queued" {
			t.Fatalf("first submission not queued: %+v", ws)
		}
		findings1[ws["window"]] = waitFinding(t, hs1.URL, ws["window"])
	}
	var sawFound bool
	for _, data := range findings1 {
		f, err := store.DecodeFinding(data)
		if err != nil {
			t.Fatalf("served finding is not a finding: %v", err)
		}
		if f.Outcome == string(engine.Found) {
			sawFound = true
		}
	}
	if !sawFound {
		t.Fatal("campaign found nothing; the known window should be Found")
	}
	stats1 := getStats(t, hs1.URL)
	if stats1.Engine.VerifyExecs == 0 {
		t.Fatal("first campaign did no verification")
	}
	if got := stats1.Engine.BatchedExecs + stats1.Engine.FallbackExecs; got != stats1.Engine.VerifyExecs {
		t.Fatalf("batched %d + fallback %d != verify execs %d",
			stats1.Engine.BatchedExecs, stats1.Engine.FallbackExecs, stats1.Engine.VerifyExecs)
	}
	if stats1.Engine.BatchCoverage < 0.95 {
		t.Fatalf("batch coverage %.3f over the service corpus, want >0.95", stats1.Engine.BatchCoverage)
	}
	if stats1.Store.Findings != len(corpus) {
		t.Fatalf("store holds %d findings, want %d", stats1.Store.Findings, len(corpus))
	}
	rb1, err := http.Get(hs1.URL + "/v1/rulebook")
	if err != nil {
		t.Fatal(err)
	}
	book1, _ := io.ReadAll(rb1.Body)
	rb1.Body.Close()
	hs1.Close() // tear down the first daemon (Cleanup will Close again; idempotent)

	// Second daemon, same store: resubmission must be answered from disk.
	srv2, hs2 := newServerT(t, dir)
	if stats1.Pool.Deposits > 0 && srv2.LoadedVectors() == 0 {
		t.Fatal("restart did not warm-load the counterexample pool")
	}
	for _, ws := range postWindows(t, hs2.URL, corpus...) {
		if ws["status"] != "cached" {
			t.Fatalf("resubmission not served from store: %+v", ws)
		}
		if data := waitFinding(t, hs2.URL, ws["window"]); !bytes.Equal(data, findings1[ws["window"]]) {
			t.Fatalf("finding %s changed across restart:\n%s\n--vs--\n%s",
				ws["window"], findings1[ws["window"]], data)
		}
	}
	stats2 := getStats(t, hs2.URL)
	if max := stats1.Engine.VerifyExecs / 20; stats2.Engine.VerifyExecs > max {
		t.Fatalf("restart run executed %d verifications, want <=%d (5%% of %d)",
			stats2.Engine.VerifyExecs, max, stats1.Engine.VerifyExecs)
	}
	if stats2.Engine.Sequences != 0 {
		t.Fatalf("restart run pushed %d sequences through the engine", stats2.Engine.Sequences)
	}
	rb2, err := http.Get(hs2.URL + "/v1/rulebook")
	if err != nil {
		t.Fatal(err)
	}
	book2, _ := io.ReadAll(rb2.Body)
	rb2.Body.Close()
	if !bytes.Equal(book1, book2) {
		t.Fatalf("rulebook changed across restart:\n%s\n--vs--\n%s", book1, book2)
	}
}

// TestServiceConcurrentSubmit hammers the submit endpoint with the same
// corpus from many goroutines: the store-plus-inflight dedup must schedule
// each window at most once and every concurrent client must eventually read
// the same finding. Run with -race this is the service's concurrency guard.
func TestServiceConcurrentSubmit(t *testing.T) {
	_, hs := newServerT(t, t.TempDir())
	corpus := append([]string{knownWindow}, extraWindows...)

	const clients = 8
	var wg sync.WaitGroup
	bodies := make([]map[string][]byte, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			bodies[c] = make(map[string][]byte)
			for _, ws := range postWindows(t, hs.URL, corpus...) {
				switch ws["status"] {
				case "queued", "pending", "cached":
				default:
					t.Errorf("client %d: unexpected status %+v", c, ws)
					return
				}
				bodies[c][ws["window"]] = waitFinding(t, hs.URL, ws["window"])
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for c := 1; c < clients; c++ {
		for win, data := range bodies[c] {
			if !bytes.Equal(data, bodies[0][win]) {
				t.Fatalf("clients disagree on finding %s", win)
			}
		}
	}
	stats := getStats(t, hs.URL)
	if stats.Engine.Sequences > len(corpus) {
		t.Fatalf("engine processed %d sequences for %d distinct windows: dedup leaked",
			stats.Engine.Sequences, len(corpus))
	}
	if stats.Store.Findings != len(corpus) {
		t.Fatalf("store holds %d findings, want %d", stats.Store.Findings, len(corpus))
	}
}

// TestServiceRawLLSubmit pins the curl path: a raw .ll module body (no JSON)
// submits every function it defines.
func TestServiceRawLLSubmit(t *testing.T) {
	_, hs := newServerT(t, t.TempDir())
	module := knownWindow + "\n\n" + extraWindows[0]
	resp, err := http.Post(hs.URL+"/v1/windows", "text/plain", strings.NewReader(module))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply struct {
		Windows []map[string]string `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Windows) != 2 {
		t.Fatalf("raw module produced %d windows, want 2", len(reply.Windows))
	}
	for _, ws := range reply.Windows {
		if ws["status"] != "queued" {
			t.Fatalf("raw window not queued: %+v", ws)
		}
		waitFinding(t, hs.URL, ws["window"])
	}
}

// TestServiceAPIErrors pins the failure envelope: bad hashes, unknown
// findings, invalid IR and empty submissions.
func TestServiceAPIErrors(t *testing.T) {
	_, hs := newServerT(t, t.TempDir())

	resp, _ := http.Get(hs.URL + "/v1/findings/not-hex")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad hash: %d", resp.StatusCode)
	}
	resp, _ = http.Get(hs.URL + "/v1/findings/" + fmt.Sprintf("%016x", 0xbeef))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown finding: %d", resp.StatusCode)
	}
	statuses := postWindows(t, hs.URL, "this is not IR")
	if len(statuses) != 1 || statuses[0]["status"] != "invalid" {
		t.Fatalf("invalid IR: %+v", statuses)
	}
	resp, _ = http.Post(hs.URL+"/v1/windows", "application/json", strings.NewReader(`{}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty submission: %d", resp.StatusCode)
	}
}
