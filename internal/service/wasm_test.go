package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/wasm"
)

// postWasm submits a raw wasm binary to /v1/windows and returns the
// per-window statuses.
func postWasm(t *testing.T, base string, data []byte) []map[string]string {
	t.Helper()
	resp, err := http.Post(base+"/v1/windows", "application/wasm", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/windows (wasm): %d", resp.StatusCode)
	}
	var reply struct {
		Windows []map[string]string `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	return reply.Windows
}

// TestServiceWasmSubmit is the wasm half of the ISSUE's acceptance test:
// submit raw .wasm binaries over HTTP, watch findings appear, restart the
// daemon on the same store, and require the resubmission to be served from
// disk byte-identically.
func TestServiceWasmSubmit(t *testing.T) {
	dir := t.TempDir()
	fixtures := wasm.Fixtures()

	_, hs1 := newServerT(t, dir)
	findings1 := make(map[string][]byte)
	var queued, skipped int
	for _, fx := range fixtures {
		for _, ws := range postWasm(t, hs1.URL, fx.Data) {
			switch ws["status"] {
			case "queued":
				queued++
				findings1[ws["window"]] = waitFinding(t, hs1.URL, ws["window"])
			case "skipped":
				skipped++
			default:
				t.Fatalf("fixture %s: unexpected first-run status %+v", fx.Name, ws)
			}
		}
	}
	if queued == 0 {
		t.Fatal("no wasm function was lifted and queued")
	}
	if skipped == 0 {
		t.Fatal("the mixed fixture should produce skipped functions")
	}
	var sawFound bool
	for _, data := range findings1 {
		f, err := store.DecodeFinding(data)
		if err != nil {
			t.Fatalf("served finding is not a finding: %v", err)
		}
		if f.Outcome == string(engine.Found) {
			sawFound = true
		}
	}
	if !sawFound {
		t.Fatal("no verified finding from the wasm corpus; the planted windows should be Found")
	}
	stats1 := getStats(t, hs1.URL)
	if stats1.Engine.Lift.Funcs == 0 || stats1.Engine.Lift.Lifted != queued || stats1.Engine.Lift.Skipped != skipped {
		t.Fatalf("lift coverage %+v does not match statuses (queued %d, skipped %d)",
			stats1.Engine.Lift, queued, skipped)
	}
	if len(stats1.Engine.Lift.Reasons) == 0 {
		t.Fatal("lift coverage recorded no skip reasons")
	}
	hs1.Close()

	// Second daemon, same store: the same binaries resolve from disk with
	// byte-identical finding bodies.
	_, hs2 := newServerT(t, dir)
	for _, fx := range fixtures {
		for _, ws := range postWasm(t, hs2.URL, fx.Data) {
			if ws["status"] == "skipped" {
				continue
			}
			if ws["status"] != "cached" {
				t.Fatalf("fixture %s: resubmission not served from store: %+v", fx.Name, ws)
			}
			if data := waitFinding(t, hs2.URL, ws["window"]); !bytes.Equal(data, findings1[ws["window"]]) {
				t.Fatalf("finding %s changed across restart", ws["window"])
			}
		}
	}
	if stats2 := getStats(t, hs2.URL); stats2.Engine.Sequences != 0 {
		t.Fatalf("restart run pushed %d sequences through the engine", stats2.Engine.Sequences)
	}
}

// TestServiceWasmBadModule rejects a malformed binary without touching the
// engine.
func TestServiceWasmBadModule(t *testing.T) {
	_, hs := newServerT(t, t.TempDir())
	resp, err := http.Post(hs.URL+"/v1/windows", "application/wasm",
		bytes.NewReader([]byte{0x00, 0x61, 0x73, 0x6D, 0x01}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed wasm: got %d, want 400", resp.StatusCode)
	}
	if stats := getStats(t, hs.URL); stats.Server.Submitted != 0 {
		t.Fatalf("malformed wasm reached the engine: %+v", stats.Server)
	}
}
