// Package service is the discovery-as-a-service layer behind cmd/lpod: an
// HTTP/JSON front end over a persistent engine worker pool and the
// content-addressed store (internal/store). It also hosts the persistence
// bridges cmd/lpo -store reuses for warm-started batch runs: saving engine
// results as findings, loading/flushing the counterexample pool, and
// assembling rulebooks from stored entries.
package service

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/alive"
	"repro/internal/engine"
	"repro/internal/generalize"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/store"
)

// FindingFromResult converts one engine result into its persisted form.
// The window key comes from the source function's structural hash — the
// same identity the engine's verify cache and the CEPool use.
func FindingFromResult(res engine.Result) *store.Finding {
	f := &store.Finding{
		Window:       store.WindowKey(ir.Hash(res.Src)),
		Outcome:      string(res.Outcome),
		Round:        res.Round,
		Src:          res.Src.String(),
		InstrsBefore: res.InstrsBefore,
		InstrsAfter:  res.InstrsAfter,
		CyclesBefore: res.CyclesBefore,
		CyclesAfter:  res.CyclesAfter,
		RuleHits:     res.RuleHits,
	}
	if res.Cand != nil {
		f.Cand = res.Cand.String()
	}
	if res.Learned != nil {
		f.LearnedID = res.Learned.ID
	}
	return f
}

// ResultFromFinding reconstructs an engine result from its persisted form,
// re-parsing the stored IR printouts. Learned rules are not reattached (the
// rulebook is served separately); RuleHits and the gain metrics survive.
func ResultFromFinding(f *store.Finding) (engine.Result, error) {
	src, err := parser.ParseFunc(f.Src)
	if err != nil {
		return engine.Result{}, fmt.Errorf("service: stored finding %s: %w", f.Window, err)
	}
	res := engine.Result{
		Outcome:      engine.Outcome(f.Outcome),
		Round:        f.Round,
		Src:          src,
		InstrsBefore: f.InstrsBefore,
		InstrsAfter:  f.InstrsAfter,
		CyclesBefore: f.CyclesBefore,
		CyclesAfter:  f.CyclesAfter,
		RuleHits:     f.RuleHits,
	}
	if f.Cand != "" {
		cand, err := parser.ParseFunc(f.Cand)
		if err != nil {
			return engine.Result{}, fmt.Errorf("service: stored finding %s: %w", f.Window, err)
		}
		res.Cand = cand
	}
	return res, nil
}

// SaveResult persists one computed result: the finding record plus, when
// the result carries a learned rule, the rulebook entry. Results served
// from the store (res.Cached) and per-run Duplicate outcomes are skipped —
// there is nothing new to record. Degraded and Panicked results are skipped
// too: persisting a fault-shaped outcome would make the store diverge from
// a fault-free same-seed campaign, so those windows stay recomputable (the
// service serves degraded outcomes from memory meanwhile). It reports
// whether a new finding record was appended; call store.Commit to make the
// batch durable.
func SaveResult(st store.Backend, res engine.Result) (added bool, err error) {
	if res.Cached || res.Src == nil || res.Degraded ||
		res.Outcome == engine.Duplicate || res.Outcome == engine.Canceled ||
		res.Outcome == engine.Errored || res.Outcome == engine.Panicked {
		return false, nil
	}
	f := FindingFromResult(res)
	data, err := f.Encode()
	if err != nil {
		return false, err
	}
	added, err = st.Put(store.KindFinding, f.Window, data)
	if err != nil {
		return false, err
	}
	if res.Learned != nil {
		if err := SaveRule(st, res.Learned); err != nil {
			return added, err
		}
	}
	return added, nil
}

// SaveRule persists one learned rule as a rulebook entry keyed by its
// content-derived ID.
func SaveRule(st store.Backend, r *generalize.Rule) error {
	book := generalize.NewRulebook([]*generalize.Rule{r})
	entry := book.Rules[0]
	data, err := json.MarshalIndent(&entry, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = st.Put(store.KindRule, entry.ID, data)
	return err
}

// StoreLookup adapts a store into the engine's Config.Lookup hook: a
// sequence whose window hash has a stored finding is served from the store
// without a provider or verifier round.
func StoreLookup(st store.Backend) func(src *ir.Func) (engine.Result, bool) {
	return func(src *ir.Func) (engine.Result, bool) {
		data, ok := st.Get(store.KindFinding, store.WindowKey(ir.Hash(src)))
		if !ok {
			return engine.Result{}, false
		}
		f, err := store.DecodeFinding(data)
		if err != nil {
			return engine.Result{}, false
		}
		res, err := ResultFromFinding(f)
		if err != nil {
			return engine.Result{}, false
		}
		return res, true
	}
}

// LoadPool installs every stored counterexample vector into the pool, so
// tier-0 replay starts with the accumulated falsifier corpus of every
// previous campaign against this store. It returns how many vectors were
// loaded (duplicates already in the pool don't count).
func LoadPool(st store.Backend, pool *alive.CEPool) (int, error) {
	n := 0
	var firstErr error
	st.Scan(store.KindVector, func(key string, val []byte) bool {
		pv, err := store.DecodePoolVec(val)
		if err != nil {
			firstErr = err
			return false
		}
		window, vec, err := pv.Vector()
		if err != nil {
			firstErr = err
			return false
		}
		if pool.Load(window, vec) {
			n++
		}
		return true
	})
	return n, firstErr
}

// FlushPool drains the pool's pending vectors (everything deposited since
// the last flush) into the store. It returns how many new vector records
// were appended; call store.Commit to make the batch durable.
func FlushPool(st store.Backend, pool *alive.CEPool) (int, error) {
	n := 0
	for _, wv := range pool.DrainPending() {
		pv := store.NewPoolVec(wv.Window, wv.Vec)
		data, err := pv.Encode()
		if err != nil {
			return n, err
		}
		added, err := st.Put(store.KindVector, store.VectorKey(wv.Window, data), data)
		if err != nil {
			return n, err
		}
		if added {
			n++
		}
	}
	return n, nil
}

// CompactKeep is the service's store-compaction policy: findings and rules
// are immutable campaign output and always survive; a pool vector survives
// only while the live pool still holds it — a vector the clock evicted
// stopped killing candidates and is dead weight on disk. Vectors that fail
// to decode are kept (compaction must never turn corruption into loss).
func CompactKeep(pool *alive.CEPool) func(kind store.Kind, key string, val []byte) bool {
	return func(kind store.Kind, key string, val []byte) bool {
		if kind != store.KindVector {
			return true
		}
		pv, err := store.DecodePoolVec(val)
		if err != nil {
			return true
		}
		window, vec, err := pv.Vector()
		if err != nil {
			return true
		}
		return pool.Contains(window, vec)
	}
}

// StoreRulebook assembles the store's rulebook entries into a serializable
// book (sorted by rule ID, deterministic encoding) — the union of every
// campaign's learned rules against this store.
func StoreRulebook(st store.Backend) (*generalize.Rulebook, error) {
	book := &generalize.Rulebook{Version: generalize.RulebookVersion}
	var firstErr error
	st.Scan(store.KindRule, func(key string, val []byte) bool {
		var e generalize.Entry
		if err := json.Unmarshal(val, &e); err != nil {
			firstErr = fmt.Errorf("service: stored rule %s: %w", key, err)
			return false
		}
		book.Rules = append(book.Rules, e)
		return true
	})
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(book.Rules, func(i, j int) bool { return book.Rules[i].ID < book.Rules[j].ID })
	return book, nil
}

// StoreOptRules compiles the store's rulebook entries into registry rules
// ready for RuleSet.WithRules — the warm-start path that lets a store's
// accumulated rules strengthen a new campaign's extractor and preprocessor.
func StoreOptRules(st store.Backend) ([]*opt.Rule, error) {
	book, err := StoreRulebook(st)
	if err != nil {
		return nil, err
	}
	if len(book.Rules) == 0 {
		return nil, nil
	}
	rules, err := book.Compile()
	if err != nil {
		return nil, err
	}
	return generalize.OptRules(rules)
}
