package service

// Chaos tests: the service's fault-tolerance contract under seeded fault
// injection at every seam — provider (llm), store write layer, and HTTP
// handler. The headline test drives a full campaign with faults everywhere
// and asserts the daemon never crashes, keeps serving, and converges to a
// store byte-identical with a fault-free same-seed run once faults clear.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/alive"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/llm"
	"repro/internal/store"
)

// chaosEngineConfig is the engine config shared by the fault-free and the
// faulted campaigns — identical settings are what make byte-identical
// convergence checkable.
func chaosEngineConfig() engine.Config {
	return engine.Config{
		Workers: 4,
		Rounds:  2,
		Verify:  alive.Options{Samples: 128, Seed: 3},
	}
}

// TestServiceBodyLimit413 pins the request-size satellite: an oversized body
// is rejected with 413 and a JSON error, never silently truncated.
func TestServiceBodyLimit413(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := New(Config{Store: st, Seed: 1, MaxBodyBytes: 1024,
		Engine: chaosEngineConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	big := strings.Repeat("; padding\n", 200) + knownWindow
	resp, err := http.Post(hs.URL+"/v1/windows", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: got %d, want 413", resp.StatusCode)
	}
	var reply map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil || reply["error"] == "" {
		t.Fatalf("413 body is not a JSON error: %v %v", reply, err)
	}

	// At exactly the limit the submission still goes through.
	resp, err = http.Post(hs.URL+"/v1/windows", "text/plain", strings.NewReader(knownWindow))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-limit body: got %d, want 200", resp.StatusCode)
	}
}

// blockClient parks every Complete call until its gate closes, simulating
// workers wedged on a slow provider.
type blockClient struct{ gate chan struct{} }

func (c blockClient) Profile() llm.Profile { return llm.Profile{Name: "blocked"} }
func (c blockClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	select {
	case <-c.gate:
		return llm.Response{Text: "ok"}, nil
	case <-ctx.Done():
		return llm.Response{}, ctx.Err()
	}
}

// TestServiceQueueFull429 pins load shedding: with the engine wedged and the
// queue full, further submissions answer 429 with Retry-After instead of
// blocking the handler.
func TestServiceQueueFull429(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	gate := make(chan struct{})
	srv, err := New(Config{
		Store:  st,
		Client: blockClient{gate: gate},
		Seed:   1,
		Engine: engine.Config{Workers: 1, QueueSize: 1,
			Verify: alive.Options{Samples: 64, Seed: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(gate) // unwedge before Close so the drain can finish
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// Enough distinct windows to fill every buffer between the handler and
	// the wedged worker (submit queue + feeder queue + in-flight).
	var windows []string
	for i := 0; i < 16; i++ {
		windows = append(windows, fmt.Sprintf(
			"define i8 @q%d(i8 %%x) { %%r = add i8 %%x, %d ret i8 %%r }", i, i+1))
	}
	body, _ := json.Marshal(map[string]any{"windows": windows})
	resp, err := http.Post(hs.URL+"/v1/windows", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit: got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var reply struct {
		Windows []map[string]string `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	queued, rejected := 0, 0
	for _, ws := range reply.Windows {
		switch ws["status"] {
		case "queued":
			queued++
		case "rejected":
			rejected++
		}
	}
	if queued == 0 || rejected == 0 {
		t.Fatalf("want a mix of queued and rejected, got %d/%d", queued, rejected)
	}
}

// TestServiceHealthz pins the liveness probe: 200/ok while the drain runs,
// 503/stopped once the server is closed.
func TestServiceHealthz(t *testing.T) {
	srv, hs := newServerT(t, t.TempDir())
	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var reply map[string]any
	json.NewDecoder(resp.Body).Decode(&reply)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || reply["status"] != "ok" || reply["engine_live"] != true {
		t.Fatalf("healthy daemon: %d %v", resp.StatusCode, reply)
	}
	srv.Close()
	resp, err = http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed daemon healthz: got %d, want 503", resp.StatusCode)
	}
}

// TestServiceRecoveryMiddleware pins the handler panic boundary: an injected
// handler panic answers 500 with a JSON error and the daemon keeps serving.
func TestServiceRecoveryMiddleware(t *testing.T) {
	_, hs := newServerT(t, t.TempDir())
	inj := fault.New(3, fault.Plan{fault.SiteHTTP: {PanicRate: 1, Budget: 1}})
	// The recovery boundary sits outermost, exactly as Handler() installs it.
	h := recoverMiddleware(fault.Middleware(inj, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: got %d, want 500", rec.Code)
	}
	var reply map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil || reply["error"] == "" {
		t.Fatalf("500 body is not a JSON error: %s", rec.Body.Bytes())
	}
	// Budget spent: the next request flows through normally.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("daemon did not keep serving after the panic: %d", rec.Code)
	}
	// And the real handler stack survives a panic probe end to end.
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// TestServiceDegradedStore pins degraded-but-serving durability: with the
// store's fsync failing, submissions still resolve and serve from memory,
// healthz and stats report the backlog, and once the fault clears the next
// commit drains it — nothing accepted is lost.
func TestServiceDegradedStore(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(5, fault.Plan{fault.SiteStoreSync: {ErrorRate: 1}})
	inj.Disable() // no faults during Open/recovery
	st, err := store.OpenWith(dir, func(f store.File) store.File { return fault.NewFile(f, inj) })
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := New(Config{Store: st, Seed: 1, Engine: chaosEngineConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	inj.Enable()

	statuses := postWindows(t, hs.URL, knownWindow)
	if statuses[0]["status"] != "queued" {
		t.Fatalf("submission not queued: %+v", statuses)
	}
	window := statuses[0]["window"]
	data := waitFinding(t, hs.URL, window) // servable despite failed commits
	if f, err := store.DecodeFinding(data); err != nil || f.Window != window {
		t.Fatalf("degraded finding malformed: %v", err)
	}

	stats := getStats(t, hs.URL)
	if stats.Store.CommitFails == 0 || stats.Store.Pending == 0 || !stats.Server.Degraded {
		t.Fatalf("degraded durability not reported: commit_fails=%d pending=%d degraded=%v",
			stats.Store.CommitFails, stats.Store.Pending, stats.Server.Degraded)
	}
	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["status"] != "degraded" {
		t.Fatalf("healthz during degraded mode: %d %v", resp.StatusCode, health)
	}

	// Fault clears: the next persisted result's commit retries the backlog.
	inj.Disable()
	statuses = postWindows(t, hs.URL, extraWindows[0])
	waitFinding(t, hs.URL, statuses[0]["window"])
	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, hs.URL).Store.Pending != 0 {
		if time.Now().After(deadline) {
			t.Fatal("commit backlog never drained after the fault cleared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Everything accepted during the outage is durable: a clean reopen
	// serves the same bytes.
	hs.Close()
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, ok := st2.Get(store.KindFinding, window)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("degraded-mode finding lost or changed after reopen (ok=%v)", ok)
	}
}

// postChaos is postWindows made fault-tolerant: it retries through injected
// 503s, 429 shedding and transport errors, and returns the last statuses.
func postChaos(t *testing.T, base string, windows ...string) []map[string]string {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"windows": windows})
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Post(base+"/v1/windows", "application/json", bytes.NewReader(body))
		if err == nil {
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusTooManyRequests {
				var reply struct {
					Windows []map[string]string `json:"windows"`
				}
				if err := json.Unmarshal(data, &reply); err != nil {
					t.Fatalf("submit reply not JSON: %v: %s", err, data)
				}
				return reply.Windows
			}
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("POST /v1/windows: %d: %s", resp.StatusCode, data)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("submission never accepted: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosCampaignConverges is the tentpole acceptance test: a full
// campaign with seeded faults at every seam — provider errors and panics,
// store fsync failures, HTTP 503 injections — must crash nothing, keep the
// daemon serving, and once the fault budgets are spent converge to a store
// byte-identical with a fault-free same-seed campaign.
func TestChaosCampaignConverges(t *testing.T) {
	corpus := append([]string{knownWindow}, extraWindows...)

	// Fault-free baseline campaign.
	baseDir := t.TempDir()
	baseline := make(map[string][]byte)
	func() {
		st, err := store.Open(baseDir)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		srv, err := New(Config{Store: st, Seed: 1, Engine: chaosEngineConfig()})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		hs := httptest.NewServer(srv.Handler())
		defer hs.Close()
		for _, ws := range postWindows(t, hs.URL, corpus...) {
			baseline[ws["window"]] = waitFinding(t, hs.URL, ws["window"])
		}
	}()

	// Faulted campaign: same seeds, same engine config, faults everywhere.
	// Budgets bound the blast radius so the run converges once they are
	// spent; the retry policy outlasts the provider's error budget so no
	// injected transient error ever surfaces as a round outcome (which
	// would change the persisted Round and break byte-identity).
	// Convergence must hold for ANY fault seed — CI exercises two via
	// LPO_CHAOS_SEED; only the fault schedule varies, never the outcome.
	chaosSeed := uint64(1729)
	if env := os.Getenv("LPO_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseUint(env, 10, 64)
		if err != nil {
			t.Fatalf("LPO_CHAOS_SEED: %v", err)
		}
		chaosSeed = v
	}
	inj := fault.New(chaosSeed, fault.Plan{
		fault.SiteLLM:       {PanicRate: 0.05, ErrorRate: 0.3, Budget: 12},
		fault.SiteStoreSync: {ErrorRate: 1, Budget: 2},
		fault.SiteHTTP:      {ErrorRate: 0.25, Budget: 4},
	})
	// The faulted campaign runs the full scaled ingest path — a 4-shard
	// store with a group committer per shard — and must STILL converge
	// byte-identical to the plain-store fault-free baseline: sharding and
	// commit coalescing change where and when bytes land, never which bytes.
	inj.Disable()
	dir := t.TempDir()
	st, err := store.OpenShardedWith(dir, 4, func(f store.File) store.File { return fault.NewFile(f, inj) })
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.StartGroupCommit(store.GroupCommitOptions{})
	client := llm.NewRetrying(
		fault.NewClient(llm.NewSim("Gemini2.0T", 1), inj),
		llm.RetryPolicy{
			MaxAttempts:      20,
			BaseDelay:        time.Millisecond,
			MaxDelay:         4 * time.Millisecond,
			Seed:             chaosSeed,
			BreakerThreshold: -1,
		})
	srv, err := New(Config{Store: st, Client: client, Seed: 1, Engine: chaosEngineConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(recoverMiddleware(fault.Middleware(inj, srv.Handler())))
	defer hs.Close()
	inj.Enable()

	// Submit under fire, then keep resubmitting until every window is
	// served from the store — the convergence criterion.
	deadline := time.Now().Add(60 * time.Second)
	for {
		statuses := postChaos(t, hs.URL, corpus...)
		cached := 0
		for _, ws := range statuses {
			switch ws["status"] {
			case "cached":
				cached++
			case "queued", "pending", "rejected":
			default:
				t.Fatalf("unexpected status under chaos: %+v", ws)
			}
		}
		if cached == len(corpus) {
			break
		}
		// The daemon must keep serving throughout.
		resp, err := http.Get(hs.URL + "/v1/healthz")
		if err != nil {
			t.Fatalf("daemon stopped serving mid-chaos: %v", err)
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("campaign never converged; injected: %v", inj)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if inj.Injected() == 0 {
		t.Fatal("chaos run injected nothing; the test proved nothing")
	}
	// Faults clear (any leftover budget stops firing); everything below is
	// the post-outage steady state.
	inj.Disable()

	// Converged: every finding byte-identical with the fault-free run.
	for window, want := range baseline {
		got := waitFinding(t, hs.URL, window)
		if !bytes.Equal(got, want) {
			t.Fatalf("finding %s diverged from the fault-free campaign:\n%s\n--vs--\n%s",
				window, want, got)
		}
	}

	// Fault accounting is visible: injected worker panics (if any fired)
	// surface as engine panics + quarantine entries, store failures as
	// commit_fails — and the backlog must have drained.
	stats := getStats(t, hs.URL)
	c := inj.Counts()
	if c[fault.SiteLLM].Panics > 0 {
		if stats.Engine.Panics == 0 || len(stats.Engine.Quarantined) == 0 {
			t.Fatalf("injected %d provider panics but engine reports %d (quarantined %v)",
				c[fault.SiteLLM].Panics, stats.Engine.Panics, stats.Engine.Quarantined)
		}
	}
	if c[fault.SiteStoreSync].Errors > 0 && stats.Store.CommitFails == 0 {
		t.Fatal("injected fsync failures left no commit_fails trace")
	}
	if stats.Store.Pending != 0 {
		t.Fatalf("converged campaign still has %d pending records", stats.Store.Pending)
	}

	// And the store really is durable: close everything, reopen every shard
	// clean, compare bytes straight from disk.
	hs.Close()
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Stats().Recovered != 0 {
		t.Fatalf("chaos shards carried torn bytes into the reopen: %+v", st2.Stats())
	}
	for window, want := range baseline {
		got, ok := st2.Get(store.KindFinding, window)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("reopened chaos store diverges at %s (ok=%v)", window, ok)
		}
	}
}
