package service

// Streaming findings: GET /v1/findings?watch=1 pushes every DURABLE finding
// to subscribers over Server-Sent Events, so multi-node campaign drivers
// consume results as they land instead of polling /v1/stats. The stream is
// an append-only in-memory log of window keys seeded from the store at
// startup (so a subscriber with cursor=0 replays the whole corpus) and
// extended by the persist workers as barriers succeed; per-subscriber
// cursors are just indexes into it, so a reconnecting subscriber resumes
// with ?cursor=N (or the SSE id it last saw) and misses nothing.
//
// Wire format (one frame per finding; ids are stream cursors):
//
//	event: finding
//	id: 42
//	data: {"window":"<16-hex>","finding":{...stored finding JSON...}}
//
// with a ": heartbeat" comment frame every Config.StreamHeartbeat to keep
// idle connections alive. Only durable findings are published — a finding
// whose persist barrier failed is deferred and published by the next
// successful barrier, preserving "servable once durable" on the stream.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/store"
)

// streamEntry is one published finding: the window key plus the SSE data
// payload (compact JSON, single line — the SSE framing requirement).
type streamEntry struct {
	window string
	data   []byte
}

// stream is the durable-findings broadcast log.
type stream struct {
	st store.Backend

	mu       sync.Mutex
	entries  []streamEntry
	seen     map[string]bool
	deferred []string      // accepted-not-durable windows awaiting a barrier
	sig      chan struct{} // closed on append, then replaced
	subs     int
}

func newStream(st store.Backend) *stream {
	s := &stream{st: st, seen: make(map[string]bool), sig: make(chan struct{})}
	// Seed from the store so cursor=0 replays everything already durable
	// (shard by shard, append order within each).
	st.Scan(store.KindFinding, func(key string, val []byte) bool {
		s.append(key, val)
		return true
	})
	return s
}

// append publishes one finding's bytes under the lock-free fast checks done
// by callers; it is idempotent per window.
func (s *stream) append(window string, val []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(window, val)
}

func (s *stream) appendLocked(window string, val []byte) {
	if s.seen[window] {
		return
	}
	var buf bytes.Buffer
	buf.WriteString(`{"window":"`)
	buf.WriteString(window)
	buf.WriteString(`","finding":`)
	if err := json.Compact(&buf, val); err != nil {
		// A stored finding that is not valid JSON cannot be framed; publish
		// the window key alone so the subscriber still learns of it.
		buf.Reset()
		buf.WriteString(`{"window":"`)
		buf.WriteString(window)
		buf.WriteString(`"`)
	}
	buf.WriteString(`}`)
	s.seen[window] = true
	s.entries = append(s.entries, streamEntry{window: window, data: buf.Bytes()})
	close(s.sig)
	s.sig = make(chan struct{})
}

// publish looks the window's durable finding up in the store and appends it.
func (s *stream) publish(window string) {
	val, ok := s.st.Get(store.KindFinding, window)
	if !ok {
		return
	}
	s.append(window, val)
}

// defer_ parks a window whose persist barrier failed; publishDeferred moves
// the parked set onto the stream after the next successful barrier.
func (s *stream) defer_(window string) {
	s.mu.Lock()
	s.deferred = append(s.deferred, window)
	s.mu.Unlock()
}

func (s *stream) publishDeferred() {
	s.mu.Lock()
	parked := s.deferred
	s.deferred = nil
	s.mu.Unlock()
	for _, w := range parked {
		s.publish(w)
	}
}

// since returns the entries at positions >= cursor, the next cursor, and a
// channel that closes when anything further is appended.
func (s *stream) since(cursor int) ([]streamEntry, int, <-chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(s.entries) {
		cursor = len(s.entries)
	}
	return s.entries[cursor:], len(s.entries), s.sig
}

func (s *stream) counts() (entries, subscribers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries), s.subs
}

func (s *stream) addSub(d int) {
	s.mu.Lock()
	s.subs += d
	s.mu.Unlock()
}

// handleFindingsStream serves GET /v1/findings: without ?watch=1, a JSON
// page of durable findings from ?cursor=N plus the next cursor; with it, an
// SSE stream that replays from the cursor and then follows new durable
// findings until the client disconnects or the server shuts down.
func (s *Server) handleFindingsStream(w http.ResponseWriter, r *http.Request) {
	cursor := 0
	if c := r.URL.Query().Get("cursor"); c != "" {
		n, err := strconv.Atoi(c)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad cursor %q", c)
			return
		}
		cursor = n
	}
	if r.URL.Query().Get("watch") == "" {
		entries, next, _ := s.strm.since(cursor)
		findings := make([]json.RawMessage, 0, len(entries))
		for _, e := range entries {
			findings = append(findings, json.RawMessage(e.data))
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"cursor":      cursor,
			"next_cursor": next,
			"findings":    findings,
		})
		return
	}

	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	s.strm.addSub(1)
	defer s.strm.addSub(-1)
	heartbeat := time.NewTicker(s.heartbeat)
	defer heartbeat.Stop()
	for {
		entries, next, sig := s.strm.since(cursor)
		for i, e := range entries {
			fmt.Fprintf(w, "event: finding\nid: %d\ndata: %s\n\n", cursor+i+1, e.data)
		}
		if len(entries) > 0 {
			cursor = next
			fl.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			// Server shutting down: one final drain below, then close the
			// stream so subscribers reconnect to the successor.
			entries, _, _ := s.strm.since(cursor)
			for i, e := range entries {
				fmt.Fprintf(w, "event: finding\nid: %d\ndata: %s\n\n", cursor+i+1, e.data)
			}
			fl.Flush()
			return
		case <-sig:
		case <-heartbeat.C:
			fmt.Fprintf(w, ": heartbeat\n\n")
			fl.Flush()
		}
	}
}
