// Package wasm is a self-contained WebAssembly binary-module frontend: a
// LEB128 varint codec, a section/function-body decoder for the MVP integer
// subset, a lifter that turns stack-machine bodies into SSA internal/ir
// functions, a module re-encoder, and a function-isolation reducer that
// carves one function plus its transitive dependencies out of a module.
//
// The package depends only on internal/ir; everything upstream (extract,
// engine, service, cmds) consumes the lifted ir.Module unchanged.
package wasm

import "fmt"

// ErrTruncated is wrapped by varint reads that run out of bytes.
var errTruncated = fmt.Errorf("wasm: truncated varint")

// readU decodes an unsigned LEB128 integer of at most bits bits. It returns
// the value and the number of bytes consumed. Overlong encodings (more bytes
// than ceil(bits/7), or set bits beyond the width in the final byte) and
// truncated input are errors.
func readU(b []byte, bits uint) (uint64, int, error) {
	var v uint64
	var shift uint
	maxBytes := int((bits + 6) / 7)
	for i := 0; i < len(b); i++ {
		if i >= maxBytes {
			return 0, 0, fmt.Errorf("wasm: overlong u%d varint", bits)
		}
		c := b[i]
		v |= uint64(c&0x7f) << shift
		if c&0x80 == 0 {
			if i == maxBytes-1 {
				// Bits of the final byte beyond the declared width must
				// be clear (e.g. a u32 fifth byte may only use 4 bits).
				if used := bits - 7*uint(i); used < 7 && (c&0x7f)>>used != 0 {
					return 0, 0, fmt.Errorf("wasm: overlong u%d varint (non-zero padding)", bits)
				}
			}
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, errTruncated
}

// readS decodes a signed LEB128 integer of at most bits bits (33 for block
// types, 32/64 for constants). The final byte's padding bits must agree with
// the sign bit, per the spec's canonical-encoding requirement.
func readS(b []byte, bits uint) (int64, int, error) {
	var v int64
	var shift uint
	maxBytes := int((bits + 6) / 7)
	for i := 0; i < len(b); i++ {
		if i >= maxBytes {
			return 0, 0, fmt.Errorf("wasm: overlong s%d varint", bits)
		}
		c := b[i]
		v |= int64(c&0x7f) << shift
		shift += 7
		if c&0x80 == 0 {
			if shift < 64 && c&0x40 != 0 {
				v |= -1 << shift
			}
			if i == maxBytes-1 {
				if used := bits - 7*uint(i); used < 7 {
					// The payload bits above the width must all equal the
					// sign bit (bit used-1 of this byte).
					pad := (c & 0x7f) >> (used - 1) // sign bit + padding
					all := byte(1)<<(7-used+1) - 1
					if pad != 0 && pad != all {
						return 0, 0, fmt.Errorf("wasm: overlong s%d varint (bad padding)", bits)
					}
				}
			}
			return v, i + 1, nil
		}
	}
	return 0, 0, errTruncated
}

// appendU appends the canonical unsigned LEB128 encoding of v.
func appendU(dst []byte, v uint64) []byte {
	for {
		c := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			c |= 0x80
		}
		dst = append(dst, c)
		if v == 0 {
			return dst
		}
	}
}

// appendS appends the canonical signed LEB128 encoding of v.
func appendS(dst []byte, v int64) []byte {
	for {
		c := byte(v & 0x7f)
		v >>= 7
		done := (v == 0 && c&0x40 == 0) || (v == -1 && c&0x40 != 0)
		if !done {
			c |= 0x80
		}
		dst = append(dst, c)
		if done {
			return dst
		}
	}
}
