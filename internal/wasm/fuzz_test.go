package wasm

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the leb128 readers, the module decoder, and the lifter
// with arbitrary bytes: malformed, truncated, and overlong inputs must
// come back as errors (or per-function skips), never panics. For inputs
// that decode cleanly it also checks the encode/decode round trip.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x61, 0x73, 0x6D})
	f.Add([]byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Add(MustEncode(testModule()))
	f.Add(MustEncode(isolateFixture()))
	for _, fx := range Fixtures() {
		f.Add(fx.Data)
	}
	valid := MustEncode(testModule())
	for cut := 1; cut < len(valid); cut += 7 {
		f.Add(valid[:cut]) // truncations at varying section boundaries
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// The varint readers must be total.
		for _, bits := range []uint{1, 7, 32, 33, 64} {
			readU(data, bits)
			readS(data, bits)
		}
		m, err := Decode(data)
		if err != nil {
			return
		}
		// A decoded module must lift without panicking, and the stats must
		// add up.
		_, st := Lift(m, "fuzz")
		if st.Lifted+st.Skipped != st.Funcs {
			t.Fatalf("lift stats do not add up: %+v", st)
		}
		// Fully-decoded modules re-encode, and the re-encoding decodes to
		// the same shape (byte-identity is not guaranteed for non-canonical
		// varints in the input; shape identity is).
		for _, fn := range m.Funcs {
			if fn.BodyErr != nil {
				return
			}
		}
		enc, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode of fully-decoded module failed: %v", err)
		}
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(m)) failed: %v\n%x", err, enc)
		}
		if len(m2.Funcs) != len(m.Funcs) || len(m2.Types) != len(m.Types) ||
			len(m2.Imports) != len(m.Imports) || len(m2.Exports) != len(m.Exports) {
			t.Fatalf("round trip changed module shape")
		}
		// And the canonical form is a fixed point.
		enc2, err := Encode(m2)
		if err != nil {
			t.Fatalf("re-Encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixed point")
		}
	})
}
