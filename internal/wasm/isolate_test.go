package wasm

import "testing"

func isolateFixture() *Module {
	return BuildModule(
		FixtureFunc{Name: "leaf", Params: []ValType{I32}, Results: []ValType{I32},
			Body: []Instr{LocalGet(0), I32Const(1), Op(OpI32Add)}},
		FixtureFunc{Name: "mid", Params: []ValType{I32}, Results: []ValType{I32},
			Body: []Instr{LocalGet(0), Call(0)}},
		FixtureFunc{Name: "top", Params: []ValType{I32, I32}, Results: []ValType{I32},
			Body: []Instr{LocalGet(0), Call(1), LocalGet(1), Op(OpI32Mul)}},
		FixtureFunc{Name: "unrelated", Params: []ValType{I64}, Results: []ValType{I64},
			Body: []Instr{LocalGet(0), LocalGet(0), Op(OpI64Mul)}},
	)
}

func TestIsolateTransitive(t *testing.T) {
	m := isolateFixture()
	iso, err := Isolate(m, 2) // "top"
	if err != nil {
		t.Fatalf("Isolate: %v", err)
	}
	if len(iso.Funcs) != 3 {
		t.Fatalf("kept %d functions, want 3 (top + mid + leaf)", len(iso.Funcs))
	}
	for _, f := range iso.Funcs {
		if f.Name == "unrelated" {
			t.Fatal("unrelated function survived isolation")
		}
	}
	if len(iso.Exports) != 1 || iso.Exports[0].Name != "top" {
		t.Fatalf("exports = %+v, want just top", iso.Exports)
	}
	// The isolated module must be encodable, decodable, and internally
	// consistent (remapped call immediates in range).
	enc := MustEncode(iso)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("isolated module does not round-trip: %v", err)
	}
	for _, f := range dec.Funcs {
		for _, in := range f.Body {
			if in.Op == OpCall && in.X >= uint64(len(dec.Imports)+len(dec.Funcs)) {
				t.Fatalf("call immediate %d out of range after remap", in.X)
			}
		}
	}
	// The isolated module is smaller than the original: that is the whole
	// point of provenance shrinking.
	if orig := MustEncode(m); len(enc) >= len(orig) {
		t.Errorf("isolated module (%d bytes) not smaller than original (%d bytes)", len(enc), len(orig))
	}
}

func TestIsolateLeafDropsEverythingElse(t *testing.T) {
	m := isolateFixture()
	iso, err := Isolate(m, 0) // "leaf"
	if err != nil {
		t.Fatalf("Isolate: %v", err)
	}
	if len(iso.Funcs) != 1 || iso.Funcs[0].Name != "leaf" {
		t.Fatalf("funcs = %+v, want just leaf", iso.Funcs)
	}
	if len(iso.Mems) != 0 {
		t.Errorf("leaf touches no memory but Mems = %+v", iso.Mems)
	}
	// The lifted isolated function still verifies and carries the name.
	lifted, st := Lift(iso, "iso")
	if st.Lifted != 1 || lifted.FuncByName("leaf") == nil {
		t.Fatalf("lift after isolate: %s", st)
	}
}

func TestIsolateByName(t *testing.T) {
	m := isolateFixture()
	if _, err := IsolateByName(m, "mid"); err != nil {
		t.Errorf("IsolateByName(mid): %v", err)
	}
	if _, err := IsolateByName(m, "nope"); err == nil {
		t.Error("IsolateByName(nope): expected error")
	}
}

func TestIsolateKeepsMemory(t *testing.T) {
	m := BuildModule(
		FixtureFunc{Name: "touches", Params: []ValType{I32}, Results: []ValType{I32},
			Body: []Instr{LocalGet(0), Mem(OpI32Load, 2, 0)}},
		FixtureFunc{Name: "pure", Params: []ValType{I32}, Results: []ValType{I32},
			Body: []Instr{LocalGet(0)}},
	)
	iso, err := Isolate(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(iso.Mems) != 1 {
		t.Fatalf("memory not kept: %+v", iso.Mems)
	}
	iso2, err := Isolate(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(iso2.Mems) != 0 {
		t.Fatalf("memory kept for pure function: %+v", iso2.Mems)
	}
}

func TestIsolateRejectsCallIndirect(t *testing.T) {
	m := BuildModule(FixtureFunc{Name: "f", Params: []ValType{I32}, Results: []ValType{I32},
		Body: []Instr{LocalGet(0), Instr{Op: OpCallIndirect, X: 0}}})
	if _, err := Isolate(m, 0); err == nil {
		t.Fatal("expected call_indirect error")
	}
}

func TestIsolateOutOfRange(t *testing.T) {
	m := isolateFixture()
	if _, err := Isolate(m, 99); err == nil {
		t.Fatal("expected out-of-range error")
	}
}
