package wasm

import "fmt"

// ValType is a wasm value type byte.
type ValType byte

// The MVP value types. Only I32 and I64 are liftable; float types decode
// fine but cause the containing function to be skipped with a counted
// reason.
const (
	I32 ValType = 0x7F
	I64 ValType = 0x7E
	F32 ValType = 0x7D
	F64 ValType = 0x7C
)

func (t ValType) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	}
	return fmt.Sprintf("valtype(0x%02X)", byte(t))
}

func validValType(b byte) bool {
	return b == byte(I32) || b == byte(I64) || b == byte(F32) || b == byte(F64)
}

// FuncType is a wasm function signature.
type FuncType struct {
	Params  []ValType
	Results []ValType
}

// Equal reports structural equality of two signatures.
func (t FuncType) Equal(o FuncType) bool {
	if len(t.Params) != len(o.Params) || len(t.Results) != len(o.Results) {
		return false
	}
	for i, p := range t.Params {
		if o.Params[i] != p {
			return false
		}
	}
	for i, r := range t.Results {
		if o.Results[i] != r {
			return false
		}
	}
	return true
}

// Import is an imported function (the only import kind the frontend models
// beyond structural skipping).
type Import struct {
	Module  string
	Name    string
	TypeIdx uint32
}

// Export is an exported entity; Kind 0 is a function.
type Export struct {
	Name  string
	Kind  byte
	Index uint32
}

// MemType is a linear-memory limit declaration.
type MemType struct {
	Min    uint32
	Max    uint32
	HasMax bool
}

// Instr is one decoded instruction. Immediates are stored flat: X carries
// indices and integer constants (sign-extended constants as their bit
// pattern), Align/Offset carry memargs, BlockType the s33 block type, and
// Table the br_table target vector (default target last).
type Instr struct {
	Op        byte
	X         uint64
	Align     uint32
	Offset    uint32
	BlockType int64
	Table     []uint32
}

// Function is one defined (non-imported) function.
type Function struct {
	TypeIdx uint32
	Name    string    // export name when exported, else "fnN"
	Locals  []ValType // declared locals, expanded from run-length pairs
	Body    []Instr   // decoded body, including the terminating end
	BodyErr error     // non-nil when the body failed to decode (lift skips)
}

// Module is a decoded wasm module (the subset of sections the frontend
// models; unknown sections are skipped structurally).
type Module struct {
	// Name labels the module for provenance (a file or fixture name). It is
	// not part of the binary format; Decode leaves it empty.
	Name    string
	Types   []FuncType
	Imports []Import // imported functions, in index-space order
	Funcs   []*Function
	Mems    []MemType
	Exports []Export
}

// NumImportedFuncs returns the number of imported functions; defined
// function i has absolute index NumImportedFuncs()+i.
func (m *Module) NumImportedFuncs() int { return len(m.Imports) }

// TypeOf returns the signature of the function with the given absolute
// index (imports first, then defined functions).
func (m *Module) TypeOf(fnIdx uint32) (FuncType, bool) {
	n := uint32(len(m.Imports))
	var ti uint32
	if fnIdx < n {
		ti = m.Imports[fnIdx].TypeIdx
	} else if d := fnIdx - n; d < uint32(len(m.Funcs)) {
		ti = m.Funcs[d].TypeIdx
	} else {
		return FuncType{}, false
	}
	if ti >= uint32(len(m.Types)) {
		return FuncType{}, false
	}
	return m.Types[ti], true
}

// The block type for blocks that produce no value.
const BlockTypeEmpty = -0x40

// Opcodes of the MVP integer subset (plus the structural and skipped ones
// the decoder recognizes).
const (
	OpUnreachable  = 0x00
	OpNop          = 0x01
	OpBlock        = 0x02
	OpLoop         = 0x03
	OpIf           = 0x04
	OpElse         = 0x05
	OpEnd          = 0x0B
	OpBr           = 0x0C
	OpBrIf         = 0x0D
	OpBrTable      = 0x0E
	OpReturn       = 0x0F
	OpCall         = 0x10
	OpCallIndirect = 0x11
	OpDrop         = 0x1A
	OpSelect       = 0x1B
	OpLocalGet     = 0x20
	OpLocalSet     = 0x21
	OpLocalTee     = 0x22
	OpGlobalGet    = 0x23
	OpGlobalSet    = 0x24

	OpI32Load    = 0x28
	OpI64Load    = 0x29
	OpF32Load    = 0x2A
	OpF64Load    = 0x2B
	OpI32Load8S  = 0x2C
	OpI32Load8U  = 0x2D
	OpI32Load16S = 0x2E
	OpI32Load16U = 0x2F
	OpI64Load8S  = 0x30
	OpI64Load8U  = 0x31
	OpI64Load16S = 0x32
	OpI64Load16U = 0x33
	OpI64Load32S = 0x34
	OpI64Load32U = 0x35
	OpI32Store   = 0x36
	OpI64Store   = 0x37
	OpF32Store   = 0x38
	OpF64Store   = 0x39
	OpI32Store8  = 0x3A
	OpI32Store16 = 0x3B
	OpI64Store8  = 0x3C
	OpI64Store16 = 0x3D
	OpI64Store32 = 0x3E
	OpMemorySize = 0x3F
	OpMemoryGrow = 0x40

	OpI32Const = 0x41
	OpI64Const = 0x42
	OpF32Const = 0x43
	OpF64Const = 0x44

	OpI32Eqz = 0x45
	OpI32Eq  = 0x46
	OpI32Ne  = 0x47
	OpI32LtS = 0x48
	OpI32LtU = 0x49
	OpI32GtS = 0x4A
	OpI32GtU = 0x4B
	OpI32LeS = 0x4C
	OpI32LeU = 0x4D
	OpI32GeS = 0x4E
	OpI32GeU = 0x4F
	OpI64Eqz = 0x50
	OpI64Eq  = 0x51
	OpI64Ne  = 0x52
	OpI64LtS = 0x53
	OpI64LtU = 0x54
	OpI64GtS = 0x55
	OpI64GtU = 0x56
	OpI64LeS = 0x57
	OpI64LeU = 0x58
	OpI64GeS = 0x59
	OpI64GeU = 0x5A

	OpI32Clz    = 0x67
	OpI32Ctz    = 0x68
	OpI32Popcnt = 0x69
	OpI32Add    = 0x6A
	OpI32Sub    = 0x6B
	OpI32Mul    = 0x6C
	OpI32DivS   = 0x6D
	OpI32DivU   = 0x6E
	OpI32RemS   = 0x6F
	OpI32RemU   = 0x70
	OpI32And    = 0x71
	OpI32Or     = 0x72
	OpI32Xor    = 0x73
	OpI32Shl    = 0x74
	OpI32ShrS   = 0x75
	OpI32ShrU   = 0x76
	OpI32Rotl   = 0x77
	OpI32Rotr   = 0x78
	OpI64Clz    = 0x79
	OpI64Ctz    = 0x7A
	OpI64Popcnt = 0x7B
	OpI64Add    = 0x7C
	OpI64Sub    = 0x7D
	OpI64Mul    = 0x7E
	OpI64DivS   = 0x7F
	OpI64DivU   = 0x80
	OpI64RemS   = 0x81
	OpI64RemU   = 0x82
	OpI64And    = 0x83
	OpI64Or     = 0x84
	OpI64Xor    = 0x85
	OpI64Shl    = 0x86
	OpI64ShrS   = 0x87
	OpI64ShrU   = 0x88
	OpI64Rotl   = 0x89
	OpI64Rotr   = 0x8A

	OpI32WrapI64    = 0xA7
	OpI64ExtendI32S = 0xAC
	OpI64ExtendI32U = 0xAD

	OpI32Extend8S  = 0xC0
	OpI32Extend16S = 0xC1
	OpI64Extend8S  = 0xC2
	OpI64Extend16S = 0xC3
	OpI64Extend32S = 0xC4
)

// isFloatOp reports whether op is part of the MVP floating-point
// instruction set (decodable immediate-wise, but never lifted).
func isFloatOp(op byte) bool {
	switch {
	case op == OpF32Load || op == OpF64Load || op == OpF32Store || op == OpF64Store:
		return true
	case op == OpF32Const || op == OpF64Const:
		return true
	case op >= 0x5B && op <= 0x66: // f32/f64 comparisons
		return true
	case op >= 0x8B && op <= 0xA6: // f32/f64 arithmetic
		return true
	case op >= 0xA8 && op <= 0xAB: // i32.trunc_f*
		return true
	case op >= 0xAE && op <= 0xC4 && !(op >= OpI32Extend8S && op <= OpI64Extend32S):
		return true // i64.trunc_f*, convert/demote/promote/reinterpret
	}
	return false
}
