package wasm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// LiftStats counts per-module lift coverage: how many functions lifted,
// how many were skipped, and why. Skips are never errors — a module with
// one exotic function still contributes every other function.
type LiftStats struct {
	Funcs   int            `json:"funcs"`
	Lifted  int            `json:"lifted"`
	Skipped int            `json:"skipped"`
	Reasons map[string]int `json:"reasons,omitempty"`
}

// Merge accumulates o into s.
func (s *LiftStats) Merge(o LiftStats) {
	s.Funcs += o.Funcs
	s.Lifted += o.Lifted
	s.Skipped += o.Skipped
	for r, n := range o.Reasons {
		if s.Reasons == nil {
			s.Reasons = make(map[string]int)
		}
		s.Reasons[r] += n
	}
}

// ReasonCount is one skip reason with its count.
type ReasonCount struct {
	Reason string
	Count  int
}

// TopReasons returns up to n skip reasons, most frequent first (ties
// alphabetical, for deterministic output).
func (s LiftStats) TopReasons(n int) []ReasonCount {
	out := make([]ReasonCount, 0, len(s.Reasons))
	for r, c := range s.Reasons {
		out = append(out, ReasonCount{r, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Reason < out[j].Reason
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// String renders "12 lifted, 3 skipped (calls 2, float-op 1)".
func (s LiftStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d lifted, %d skipped", s.Lifted, s.Skipped)
	if top := s.TopReasons(3); len(top) > 0 {
		b.WriteString(" (")
		for i, rc := range top {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %d", rc.Reason, rc.Count)
		}
		b.WriteString(")")
	}
	return b.String()
}

// SkipError explains why one function was not lifted.
type SkipError struct {
	Reason string // stable, countable bucket
	Detail string
}

func (e *SkipError) Error() string {
	if e.Detail == "" {
		return "wasm: skip: " + e.Reason
	}
	return "wasm: skip: " + e.Reason + ": " + e.Detail
}

func skip(reason, format string, args ...any) error {
	return &SkipError{Reason: reason, Detail: fmt.Sprintf(format, args...)}
}

// SkipReason extracts the countable bucket from a lift error.
func SkipReason(err error) string {
	if se, ok := err.(*SkipError); ok {
		return se.Reason
	}
	return "internal"
}

// liftInstrCap bounds the emitted IR per function; pathological bodies
// (e.g. a loop over tens of thousands of locals, each needing a header
// phi) are skipped rather than inflated.
const liftInstrCap = 1 << 16

// Lift lifts every defined function of m into an ir.Module. Functions that
// use features outside the MVP integer subset are skipped with a counted
// reason; lifting itself never fails.
func Lift(m *Module, modName string) (*ir.Module, LiftStats) {
	out := &ir.Module{Name: modName}
	st := LiftStats{Reasons: make(map[string]int)}
	for _, f := range m.Funcs {
		st.Funcs++
		fn, err := LiftFunc(m, f)
		if err != nil {
			st.Skipped++
			st.Reasons[SkipReason(err)]++
			continue
		}
		st.Lifted++
		out.Funcs = append(out.Funcs, fn)
	}
	return out, st
}

func mapValType(t ValType) (ir.Type, bool) {
	switch t {
	case I32:
		return ir.I32, true
	case I64:
		return ir.I64, true
	}
	return nil, false
}

// LiftFunc lifts one defined function into SSA form: the operand stack
// becomes virtual registers, locals become per-path value bindings merged
// with phis at control-flow joins, and structured control flow (block,
// loop, if/else, br, br_if) becomes an explicit ir.Block CFG. The result
// is validated by ir.VerifyFunc before being returned.
func LiftFunc(m *Module, f *Function) (*ir.Func, error) {
	if f.BodyErr != nil {
		return nil, skip("body-undecoded", "%v", f.BodyErr)
	}
	if int(f.TypeIdx) >= len(m.Types) {
		return nil, skip("stack-shape", "type index out of range")
	}
	sig := m.Types[f.TypeIdx]
	if len(sig.Results) > 1 {
		return nil, skip("multi-result", "%d results", len(sig.Results))
	}
	ret := ir.Type(ir.Void)
	if len(sig.Results) == 1 {
		t, ok := mapValType(sig.Results[0])
		if !ok {
			return nil, skip("float-type", "result %s", sig.Results[0])
		}
		ret = t
	}
	l := &lifter{m: m, f: f, sig: sig}
	l.out = &ir.Func{Name: f.Name, Ret: ret}
	l.newBlock("entry")
	for i, p := range sig.Params {
		t, ok := mapValType(p)
		if !ok {
			return nil, skip("float-type", "param %d is %s", i, p)
		}
		prm := &ir.Param{Nm: fmt.Sprintf("p%d", i), Ty: t}
		l.out.Params = append(l.out.Params, prm)
		l.locals = append(l.locals, prm)
	}
	for i, lt := range f.Locals {
		t, ok := mapValType(lt)
		if !ok {
			return nil, skip("float-type", "local %d is %s", i, lt)
		}
		l.locals = append(l.locals, ir.CInt(t.(ir.IntType), 0))
	}
	l.frames = []*frame{{kind: frameFunc, results: sig.Results}}
	if err := l.run(); err != nil {
		return nil, err
	}
	if err := ir.VerifyFunc(l.out); err != nil {
		return nil, skip("verifier", "%v", err)
	}
	return l.out, nil
}

const frameFunc = 0xFF

// frame is one entry of the control-flow stack.
type frame struct {
	kind      byte // OpBlock, OpLoop, OpIf, or frameFunc
	results   []ValType
	stackBase int
	joinLabel string // br target: loop header, or the block/if join

	// block/if: edges into the join, collected from br/br_if/fallthrough.
	edges []edge

	// loop: one header phi per local; back edges append incomings.
	headerPhis []*ir.Instr

	// if bookkeeping.
	condBr      *ir.Instr  // false target patched when else appears
	condLabel   string     // block holding condBr (implicit false edge)
	entryLocals []ir.Value // locals at if entry, restored for the else arm
	sawElse     bool
}

// edge is one control-flow edge into a join: the predecessor block, the
// frame's result values on that path, and the local bindings on that path.
type edge struct {
	pred   string
	vals   []ir.Value
	locals []ir.Value
}

type lifter struct {
	m      *Module
	f      *Function
	sig    FuncType
	out    *ir.Func
	cur    *ir.Block // nil while lifting unreachable code
	stack  []ir.Value
	locals []ir.Value
	frames []*frame
	nval   int
	nblk   int
	ninstr int
	memP   *ir.Param

	// skipDepth counts block/loop/if nesting entered while unreachable.
	skipDepth int
}

func (l *lifter) fresh() string { l.nval++; return fmt.Sprintf("t%d", l.nval-1) }
func (l *lifter) blkName() string {
	l.nblk++
	return fmt.Sprintf("b%d", l.nblk)
}

func (l *lifter) newBlock(name string) *ir.Block {
	b := &ir.Block{Name: name}
	l.out.Blocks = append(l.out.Blocks, b)
	l.cur = b
	return b
}

func (l *lifter) emit(in *ir.Instr) ir.Value {
	l.cur.Instrs = append(l.cur.Instrs, in)
	l.ninstr++
	return in
}

func (l *lifter) push(v ir.Value) { l.stack = append(l.stack, v) }

func (l *lifter) pop() (ir.Value, error) {
	if len(l.stack) <= l.frames[len(l.frames)-1].stackBase {
		return nil, skip("stack-shape", "operand stack underflow")
	}
	v := l.stack[len(l.stack)-1]
	l.stack = l.stack[:len(l.stack)-1]
	return v, nil
}

func (l *lifter) popT(t ir.Type) (ir.Value, error) {
	v, err := l.pop()
	if err != nil {
		return nil, err
	}
	if !ir.Equal(v.Type(), t) {
		return nil, skip("stack-shape", "expected %s, have %s", t, v.Type())
	}
	return v, nil
}

// topN returns the top n stack values without popping them.
func (l *lifter) topN(n int) ([]ir.Value, error) {
	if n == 0 {
		return nil, nil
	}
	if len(l.stack)-n < l.frames[len(l.frames)-1].stackBase {
		return nil, skip("stack-shape", "operand stack underflow")
	}
	out := make([]ir.Value, n)
	copy(out, l.stack[len(l.stack)-n:])
	return out, nil
}

func (l *lifter) snapLocals() []ir.Value {
	out := make([]ir.Value, len(l.locals))
	copy(out, l.locals)
	return out
}

// mem returns the linear-memory base pointer parameter, adding it to the
// function signature on first use.
func (l *lifter) mem() ir.Value {
	if l.memP == nil {
		l.memP = &ir.Param{Nm: "mem", Ty: ir.Ptr}
		l.out.Params = append(l.out.Params, l.memP)
	}
	return l.memP
}

// addr lowers a wasm effective address: zero-extend the 32-bit address to
// i64, add the static offset, and index the memory base pointer bytewise.
// Alignment is always 1: wasm memargs are hints, not guarantees.
func (l *lifter) addr(a ir.Value, off uint32) ir.Value {
	idx := l.emit(ir.Conv(ir.OpZExt, l.fresh(), a, ir.I64, ir.NoFlags))
	if off != 0 {
		idx = l.emit(ir.Bin(ir.OpAdd, l.fresh(), ir.NUW, idx, ir.CInt(ir.I64, int64(off))))
	}
	return l.emit(ir.GEPI(l.fresh(), ir.I8, l.mem(), idx, ir.NoFlags))
}

// blockResults maps a decoded block type onto frame result types.
func (l *lifter) blockResults(bt int64) ([]ValType, error) {
	if bt == BlockTypeEmpty {
		return nil, nil
	}
	if bt >= 0 {
		return nil, skip("block-params", "type-index block type %d", bt)
	}
	vt := ValType(byte(bt & 0x7f))
	if _, ok := mapValType(vt); !ok {
		return nil, skip("float-type", "block result %s", vt)
	}
	return []ValType{vt}, nil
}

// run walks the decoded body, maintaining the operand stack, local
// bindings, and control-flow frame stack.
func (l *lifter) run() error {
	for _, in := range l.f.Body {
		if l.ninstr > liftInstrCap {
			return skip("too-large", "more than %d lifted instructions", liftInstrCap)
		}
		if len(l.frames) == 0 {
			return skip("stack-shape", "code after function end")
		}
		if l.cur == nil {
			// Unreachable code: skip until the else/end that reactivates us.
			switch in.Op {
			case OpBlock, OpLoop, OpIf:
				l.skipDepth++
			case OpElse:
				if l.skipDepth == 0 {
					if err := l.startElse(); err != nil {
						return err
					}
				}
			case OpEnd:
				if l.skipDepth > 0 {
					l.skipDepth--
				} else if err := l.endFrame(false); err != nil {
					return err
				}
			}
			continue
		}
		if err := l.step(in); err != nil {
			return err
		}
	}
	if len(l.frames) != 0 {
		return skip("stack-shape", "unbalanced control frames")
	}
	return nil
}

// step lifts one instruction in reachable code.
func (l *lifter) step(in Instr) error {
	switch in.Op {
	case OpNop:
	case OpUnreachable:
		l.emit(&ir.Instr{Op: ir.OpUnreachable, Ty: ir.Void})
		l.cur = nil

	case OpBlock:
		results, err := l.blockResults(in.BlockType)
		if err != nil {
			return err
		}
		l.frames = append(l.frames, &frame{
			kind: OpBlock, results: results,
			stackBase: len(l.stack), joinLabel: l.blkName(),
		})

	case OpLoop:
		results, err := l.blockResults(in.BlockType)
		if err != nil {
			return err
		}
		header := l.blkName()
		pred := l.cur.Name
		l.emit(ir.BrI(header))
		hb := l.newBlock(header)
		fr := &frame{
			kind: OpLoop, results: results,
			stackBase: len(l.stack), joinLabel: header,
		}
		fr.headerPhis = make([]*ir.Instr, len(l.locals))
		for i, v := range l.locals {
			phi := ir.PhiI(l.fresh(), v.Type(), []ir.Value{v}, []string{pred})
			hb.Instrs = append(hb.Instrs, phi)
			l.ninstr++
			fr.headerPhis[i] = phi
			l.locals[i] = phi
		}
		l.frames = append(l.frames, fr)

	case OpIf:
		results, err := l.blockResults(in.BlockType)
		if err != nil {
			return err
		}
		c, err := l.popT(ir.I32)
		if err != nil {
			return err
		}
		cond := l.emit(ir.ICmpI(l.fresh(), ir.NE, c, ir.CInt(ir.I32, 0)))
		thenL, joinL := l.blkName(), l.blkName()
		fr := &frame{
			kind: OpIf, results: results,
			stackBase: len(l.stack), joinLabel: joinL,
			condLabel: l.cur.Name, entryLocals: l.snapLocals(),
		}
		br := ir.CondBrI(cond, thenL, joinL)
		l.emit(br)
		fr.condBr = br
		l.frames = append(l.frames, fr)
		l.newBlock(thenL)

	case OpElse:
		return l.startElse()

	case OpEnd:
		return l.endFrame(true)

	case OpBr:
		return l.br(in.X, true)

	case OpBrIf:
		c, err := l.popT(ir.I32)
		if err != nil {
			return err
		}
		cond := l.emit(ir.ICmpI(l.fresh(), ir.NE, c, ir.CInt(ir.I32, 0)))
		return l.brIf(in.X, cond)

	case OpReturn:
		if err := l.emitReturn(); err != nil {
			return err
		}
		l.cur = nil

	case OpDrop:
		_, err := l.pop()
		return err

	case OpSelect:
		c, err := l.popT(ir.I32)
		if err != nil {
			return err
		}
		fv, err := l.pop()
		if err != nil {
			return err
		}
		tv, err := l.popT(fv.Type())
		if err != nil {
			return err
		}
		cond := l.emit(ir.ICmpI(l.fresh(), ir.NE, c, ir.CInt(ir.I32, 0)))
		l.push(l.emit(ir.Sel(l.fresh(), cond, tv, fv)))

	case OpLocalGet:
		if in.X >= uint64(len(l.locals)) {
			return skip("stack-shape", "local %d out of range", in.X)
		}
		l.push(l.locals[in.X])
	case OpLocalSet:
		if in.X >= uint64(len(l.locals)) {
			return skip("stack-shape", "local %d out of range", in.X)
		}
		v, err := l.pop()
		if err != nil {
			return err
		}
		l.locals[in.X] = v
	case OpLocalTee:
		if in.X >= uint64(len(l.locals)) {
			return skip("stack-shape", "local %d out of range", in.X)
		}
		v, err := l.topN(1)
		if err != nil {
			return err
		}
		l.locals[in.X] = v[0]

	case OpGlobalGet, OpGlobalSet:
		return skip("globals", "global %d", in.X)
	case OpCall, OpCallIndirect:
		return skip("calls", "")
	case OpBrTable:
		return skip("br-table", "")
	case OpMemorySize, OpMemoryGrow:
		return skip("memory-size", "")

	case OpI32Const:
		l.push(ir.CInt(ir.I32, int64(in.X)))
	case OpI64Const:
		l.push(ir.CInt(ir.I64, int64(in.X)))

	default:
		return l.stepNumeric(in)
	}
	return nil
}

// emitReturn emits ret with the function's result taken from the stack top
// (without popping: br_if-to-function keeps values live on fallthrough).
func (l *lifter) emitReturn() error {
	if len(l.sig.Results) == 0 {
		l.emit(ir.RetVoid())
		return nil
	}
	vs, err := l.topN(1)
	if err != nil {
		return err
	}
	l.emit(ir.RetI(vs[0]))
	return nil
}

// br lifts an unconditional branch to relative depth d. When uncond is
// false the caller handles the control transfer itself.
func (l *lifter) br(d uint64, uncond bool) error {
	fr, err := l.targetFrame(d)
	if err != nil {
		return err
	}
	switch fr.kind {
	case frameFunc:
		if err := l.emitReturn(); err != nil {
			return err
		}
	case OpLoop:
		l.addLoopBackedge(fr)
		l.emit(ir.BrI(fr.joinLabel))
	default:
		vals, err := l.topN(len(fr.results))
		if err != nil {
			return err
		}
		fr.edges = append(fr.edges, edge{pred: l.cur.Name, vals: vals, locals: l.snapLocals()})
		l.emit(ir.BrI(fr.joinLabel))
	}
	l.cur = nil
	return nil
}

// brIf lifts a conditional branch: the taken edge goes to the target
// frame, the fallthrough continues in a fresh block with values intact.
func (l *lifter) brIf(d uint64, cond ir.Value) error {
	fr, err := l.targetFrame(d)
	if err != nil {
		return err
	}
	next := l.blkName()
	switch fr.kind {
	case frameFunc:
		// Branch to a block that returns; fallthrough keeps the stack.
		thenL := l.blkName()
		l.emit(ir.CondBrI(cond, thenL, next))
		l.newBlock(thenL)
		if err := l.emitReturn(); err != nil {
			return err
		}
	case OpLoop:
		l.addLoopBackedge(fr)
		l.emit(ir.CondBrI(cond, fr.joinLabel, next))
	default:
		vals, err := l.topN(len(fr.results))
		if err != nil {
			return err
		}
		fr.edges = append(fr.edges, edge{pred: l.cur.Name, vals: vals, locals: l.snapLocals()})
		l.emit(ir.CondBrI(cond, fr.joinLabel, next))
	}
	l.newBlock(next)
	return nil
}

func (l *lifter) targetFrame(d uint64) (*frame, error) {
	if d >= uint64(len(l.frames)) {
		return nil, skip("stack-shape", "branch depth %d out of range", d)
	}
	return l.frames[len(l.frames)-1-int(d)], nil
}

// addLoopBackedge appends the current local bindings to the loop header
// phis for the edge from the current block.
func (l *lifter) addLoopBackedge(fr *frame) {
	for i, phi := range fr.headerPhis {
		phi.Args = append(phi.Args, l.locals[i])
		phi.Labels = append(phi.Labels, l.cur.Name)
	}
}

// startElse switches an if frame from its then arm to its else arm.
func (l *lifter) startElse() error {
	fr := l.frames[len(l.frames)-1]
	if fr.kind != OpIf || fr.sawElse {
		return skip("stack-shape", "else outside if")
	}
	if l.cur != nil {
		vals, err := l.topN(len(fr.results))
		if err != nil {
			return err
		}
		fr.edges = append(fr.edges, edge{pred: l.cur.Name, vals: vals, locals: l.snapLocals()})
		l.emit(ir.BrI(fr.joinLabel))
	}
	fr.sawElse = true
	elseL := l.blkName()
	fr.condBr.Labels[1] = elseL
	l.stack = l.stack[:fr.stackBase]
	l.locals = append(l.locals[:0:0], fr.entryLocals...)
	l.skipDepth = 0
	l.newBlock(elseL)
	return nil
}

// endFrame pops the top control frame at its end instruction. reachable
// says whether execution can fall through into the join.
func (l *lifter) endFrame(reachable bool) error {
	if len(l.frames) == 0 {
		return skip("stack-shape", "unbalanced end")
	}
	// Collect the fallthrough edge while the frame is still pushed, so the
	// operand-stack underflow checks run against this frame's base.
	fr := l.frames[len(l.frames)-1]

	switch fr.kind {
	case frameFunc:
		var err error
		if reachable {
			err = l.emitReturn()
		}
		l.frames = l.frames[:len(l.frames)-1]
		return err

	case OpLoop:
		// Fallthrough out of a loop: results stay on the stack, the
		// current bindings flow on. Nothing joins here — br to a loop
		// goes backwards, never forwards.
		if !reachable {
			l.stack = l.stack[:fr.stackBase]
			l.cur = nil
		}
		l.frames = l.frames[:len(l.frames)-1]
		return nil
	}

	// block / if.
	if reachable {
		vals, err := l.topN(len(fr.results))
		if err != nil {
			return err
		}
		fr.edges = append(fr.edges, edge{pred: l.cur.Name, vals: vals, locals: l.snapLocals()})
		l.emit(ir.BrI(fr.joinLabel))
	}
	l.frames = l.frames[:len(l.frames)-1]
	if fr.kind == OpIf && !fr.sawElse {
		// The condBr's false target still points at the join: that path
		// carries the if-entry bindings and, in valid modules, no values.
		if len(fr.results) != 0 {
			return skip("stack-shape", "if without else yields a value")
		}
		fr.edges = append(fr.edges, edge{pred: fr.condLabel, locals: fr.entryLocals})
	}
	l.stack = l.stack[:fr.stackBase]
	if len(fr.edges) == 0 {
		// Nothing reaches the join; code after end stays unreachable.
		l.cur = nil
		return nil
	}
	join := l.newBlock(fr.joinLabel)
	// Merge result values and local bindings across the incoming edges,
	// creating phis only where the edges disagree.
	for k := range fr.results {
		t, _ := mapValType(fr.results[k])
		l.push(l.mergeSlot(join, t, fr.edges, func(e edge) ir.Value { return e.vals[k] }))
	}
	for i := range l.locals {
		i := i
		l.locals[i] = l.mergeSlot(join, fr.edges[0].locals[i].Type(), fr.edges,
			func(e edge) ir.Value { return e.locals[i] })
	}
	return nil
}

// mergeSlot merges one value slot across edges: the value itself when all
// edges agree, otherwise a phi in the join block.
func (l *lifter) mergeSlot(join *ir.Block, t ir.Type, edges []edge, get func(edge) ir.Value) ir.Value {
	first := get(edges[0])
	same := true
	for _, e := range edges[1:] {
		if get(e) != first {
			same = false
			break
		}
	}
	if same {
		return first
	}
	vals := make([]ir.Value, len(edges))
	labels := make([]string, len(edges))
	for i, e := range edges {
		vals[i] = get(e)
		labels[i] = e.pred
	}
	phi := ir.PhiI(l.fresh(), t, vals, labels)
	join.Instrs = append(join.Instrs, phi)
	l.ninstr++
	return phi
}

// stepNumeric lifts the numeric (arithmetic, comparison, conversion,
// memory) instruction set.
func (l *lifter) stepNumeric(in Instr) error {
	type binDesc struct {
		t  ir.IntType
		op ir.Opcode
	}
	if d, ok := map[byte]binDesc{
		OpI32Add: {ir.I32, ir.OpAdd}, OpI32Sub: {ir.I32, ir.OpSub},
		OpI32Mul: {ir.I32, ir.OpMul}, OpI32DivS: {ir.I32, ir.OpSDiv},
		OpI32DivU: {ir.I32, ir.OpUDiv}, OpI32RemS: {ir.I32, ir.OpSRem},
		OpI32RemU: {ir.I32, ir.OpURem}, OpI32And: {ir.I32, ir.OpAnd},
		OpI32Or: {ir.I32, ir.OpOr}, OpI32Xor: {ir.I32, ir.OpXor},
		OpI64Add: {ir.I64, ir.OpAdd}, OpI64Sub: {ir.I64, ir.OpSub},
		OpI64Mul: {ir.I64, ir.OpMul}, OpI64DivS: {ir.I64, ir.OpSDiv},
		OpI64DivU: {ir.I64, ir.OpUDiv}, OpI64RemS: {ir.I64, ir.OpSRem},
		OpI64RemU: {ir.I64, ir.OpURem}, OpI64And: {ir.I64, ir.OpAnd},
		OpI64Or: {ir.I64, ir.OpOr}, OpI64Xor: {ir.I64, ir.OpXor},
	}[in.Op]; ok {
		b, err := l.popT(d.t)
		if err != nil {
			return err
		}
		a, err := l.popT(d.t)
		if err != nil {
			return err
		}
		l.push(l.emit(ir.Bin(d.op, l.fresh(), ir.NoFlags, a, b)))
		return nil
	}

	type shiftDesc struct {
		t  ir.IntType
		op ir.Opcode
	}
	if d, ok := map[byte]shiftDesc{
		OpI32Shl: {ir.I32, ir.OpShl}, OpI32ShrS: {ir.I32, ir.OpAShr},
		OpI32ShrU: {ir.I32, ir.OpLShr},
		OpI64Shl:  {ir.I64, ir.OpShl}, OpI64ShrS: {ir.I64, ir.OpAShr},
		OpI64ShrU: {ir.I64, ir.OpLShr},
	}[in.Op]; ok {
		b, err := l.popT(d.t)
		if err != nil {
			return err
		}
		a, err := l.popT(d.t)
		if err != nil {
			return err
		}
		// Wasm shifts are mod-width; IR shifts past the width are poison,
		// so mask the count explicitly.
		mb := l.emit(ir.Bin(ir.OpAnd, l.fresh(), ir.NoFlags, b, ir.CInt(d.t, int64(d.t.W-1))))
		l.push(l.emit(ir.Bin(d.op, l.fresh(), ir.NoFlags, a, mb)))
		return nil
	}

	if d, ok := map[byte]struct {
		base string
		t    ir.IntType
	}{
		OpI32Rotl: {"fshl", ir.I32}, OpI32Rotr: {"fshr", ir.I32},
		OpI64Rotl: {"fshl", ir.I64}, OpI64Rotr: {"fshr", ir.I64},
	}[in.Op]; ok {
		// rotl(x, y) == fshl(x, x, y); the funnel-shift kernels already
		// reduce the shift amount mod width, exactly wasm's semantics.
		b, err := l.popT(d.t)
		if err != nil {
			return err
		}
		a, err := l.popT(d.t)
		if err != nil {
			return err
		}
		l.push(l.emit(ir.CallI(l.fresh(), ir.IntrinsicName(d.base, d.t), d.t, a, a, b)))
		return nil
	}

	if base, ok := map[byte]struct {
		name string
		t    ir.IntType
		flag bool
	}{
		OpI32Clz: {"ctlz", ir.I32, true}, OpI32Ctz: {"cttz", ir.I32, true},
		OpI32Popcnt: {"ctpop", ir.I32, false},
		OpI64Clz:    {"ctlz", ir.I64, true}, OpI64Ctz: {"cttz", ir.I64, true},
		OpI64Popcnt: {"ctpop", ir.I64, false},
	}[in.Op]; ok {
		a, err := l.popT(base.t)
		if err != nil {
			return err
		}
		args := []ir.Value{a}
		if base.flag {
			// Wasm clz/ctz are defined on zero, so the is-zero-poison
			// flag is always false.
			args = append(args, ir.CBool(false))
		}
		l.push(l.emit(ir.CallI(l.fresh(), ir.IntrinsicName(base.name, base.t), base.t, args...)))
		return nil
	}

	if t, ok := map[byte]ir.IntType{OpI32Eqz: ir.I32, OpI64Eqz: ir.I64}[in.Op]; ok {
		a, err := l.popT(t)
		if err != nil {
			return err
		}
		c := l.emit(ir.ICmpI(l.fresh(), ir.EQ, a, ir.CInt(t, 0)))
		l.push(l.emit(ir.Conv(ir.OpZExt, l.fresh(), c, ir.I32, ir.NoFlags)))
		return nil
	}

	type cmpDesc struct {
		t ir.IntType
		p ir.IPred
	}
	if d, ok := map[byte]cmpDesc{
		OpI32Eq: {ir.I32, ir.EQ}, OpI32Ne: {ir.I32, ir.NE},
		OpI32LtS: {ir.I32, ir.SLT}, OpI32LtU: {ir.I32, ir.ULT},
		OpI32GtS: {ir.I32, ir.SGT}, OpI32GtU: {ir.I32, ir.UGT},
		OpI32LeS: {ir.I32, ir.SLE}, OpI32LeU: {ir.I32, ir.ULE},
		OpI32GeS: {ir.I32, ir.SGE}, OpI32GeU: {ir.I32, ir.UGE},
		OpI64Eq: {ir.I64, ir.EQ}, OpI64Ne: {ir.I64, ir.NE},
		OpI64LtS: {ir.I64, ir.SLT}, OpI64LtU: {ir.I64, ir.ULT},
		OpI64GtS: {ir.I64, ir.SGT}, OpI64GtU: {ir.I64, ir.UGT},
		OpI64LeS: {ir.I64, ir.SLE}, OpI64LeU: {ir.I64, ir.ULE},
		OpI64GeS: {ir.I64, ir.SGE}, OpI64GeU: {ir.I64, ir.UGE},
	}[in.Op]; ok {
		b, err := l.popT(d.t)
		if err != nil {
			return err
		}
		a, err := l.popT(d.t)
		if err != nil {
			return err
		}
		c := l.emit(ir.ICmpI(l.fresh(), d.p, a, b))
		l.push(l.emit(ir.Conv(ir.OpZExt, l.fresh(), c, ir.I32, ir.NoFlags)))
		return nil
	}

	switch in.Op {
	case OpI32WrapI64:
		a, err := l.popT(ir.I64)
		if err != nil {
			return err
		}
		l.push(l.emit(ir.Conv(ir.OpTrunc, l.fresh(), a, ir.I32, ir.NoFlags)))
		return nil
	case OpI64ExtendI32S:
		a, err := l.popT(ir.I32)
		if err != nil {
			return err
		}
		l.push(l.emit(ir.Conv(ir.OpSExt, l.fresh(), a, ir.I64, ir.NoFlags)))
		return nil
	case OpI64ExtendI32U:
		a, err := l.popT(ir.I32)
		if err != nil {
			return err
		}
		l.push(l.emit(ir.Conv(ir.OpZExt, l.fresh(), a, ir.I64, ir.NoFlags)))
		return nil
	}

	if d, ok := map[byte]struct {
		t   ir.IntType
		via ir.IntType
	}{
		OpI32Extend8S: {ir.I32, ir.I8}, OpI32Extend16S: {ir.I32, ir.I16},
		OpI64Extend8S: {ir.I64, ir.I8}, OpI64Extend16S: {ir.I64, ir.I16},
		OpI64Extend32S: {ir.I64, ir.I32},
	}[in.Op]; ok {
		a, err := l.popT(d.t)
		if err != nil {
			return err
		}
		tr := l.emit(ir.Conv(ir.OpTrunc, l.fresh(), a, d.via, ir.NoFlags))
		l.push(l.emit(ir.Conv(ir.OpSExt, l.fresh(), tr, d.t, ir.NoFlags)))
		return nil
	}

	if err := l.stepMemory(in); err != errNotMemory {
		return err
	}

	if isFloatOp(in.Op) {
		return skip("float-op", "opcode 0x%02X", in.Op)
	}
	return skip("unsupported", "opcode 0x%02X", in.Op)
}

var errNotMemory = fmt.Errorf("not a memory op")

// stepMemory lifts loads and stores against the linear-memory pointer.
func (l *lifter) stepMemory(in Instr) error {
	type loadDesc struct {
		mem ir.IntType // in-memory width
		res ir.IntType // result type
		ext ir.Opcode  // widening op, 0 when mem == res
	}
	if d, ok := map[byte]loadDesc{
		OpI32Load:    {ir.I32, ir.I32, 0},
		OpI64Load:    {ir.I64, ir.I64, 0},
		OpI32Load8S:  {ir.I8, ir.I32, ir.OpSExt},
		OpI32Load8U:  {ir.I8, ir.I32, ir.OpZExt},
		OpI32Load16S: {ir.I16, ir.I32, ir.OpSExt},
		OpI32Load16U: {ir.I16, ir.I32, ir.OpZExt},
		OpI64Load8S:  {ir.I8, ir.I64, ir.OpSExt},
		OpI64Load8U:  {ir.I8, ir.I64, ir.OpZExt},
		OpI64Load16S: {ir.I16, ir.I64, ir.OpSExt},
		OpI64Load16U: {ir.I16, ir.I64, ir.OpZExt},
		OpI64Load32S: {ir.I32, ir.I64, ir.OpSExt},
		OpI64Load32U: {ir.I32, ir.I64, ir.OpZExt},
	}[in.Op]; ok {
		a, err := l.popT(ir.I32)
		if err != nil {
			return err
		}
		p := l.addr(a, in.Offset)
		v := l.emit(ir.LoadI(l.fresh(), d.mem, p, 1))
		if d.ext != 0 {
			v = l.emit(ir.Conv(d.ext, l.fresh(), v, d.res, ir.NoFlags))
		}
		l.push(v)
		return nil
	}

	type storeDesc struct {
		val ir.IntType // operand type
		mem ir.IntType // in-memory width (truncated when narrower)
	}
	if d, ok := map[byte]storeDesc{
		OpI32Store:   {ir.I32, ir.I32},
		OpI64Store:   {ir.I64, ir.I64},
		OpI32Store8:  {ir.I32, ir.I8},
		OpI32Store16: {ir.I32, ir.I16},
		OpI64Store8:  {ir.I64, ir.I8},
		OpI64Store16: {ir.I64, ir.I16},
		OpI64Store32: {ir.I64, ir.I32},
	}[in.Op]; ok {
		v, err := l.popT(d.val)
		if err != nil {
			return err
		}
		a, err := l.popT(ir.I32)
		if err != nil {
			return err
		}
		p := l.addr(a, in.Offset)
		if d.mem != d.val {
			v = l.emit(ir.Conv(ir.OpTrunc, l.fresh(), v, d.mem, ir.NoFlags))
		}
		l.emit(ir.StoreI(v, p, 1))
		return nil
	}
	return errNotMemory
}
