package wasm

import (
	"bytes"
	"testing"
)

func TestLEB128RoundTrip(t *testing.T) {
	uvals := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<32 - 1, 1<<64 - 1}
	for _, v := range uvals {
		enc := appendU(nil, v)
		got, n, err := readU(enc, 64)
		if err != nil || n != len(enc) || got != v {
			t.Errorf("readU(appendU(%d)) = %d, %d, %v", v, got, n, err)
		}
	}
	svals := []int64{0, 1, -1, 63, 64, -64, -65, 1<<31 - 1, -1 << 31, 1<<62 - 1, -1 << 62}
	for _, v := range svals {
		enc := appendS(nil, v)
		got, n, err := readS(enc, 64)
		if err != nil || n != len(enc) || got != v {
			t.Errorf("readS(appendS(%d)) = %d, %d, %v", v, got, n, err)
		}
	}
}

func TestLEB128Malformed(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
		bits uint
		sign bool
	}{
		{"truncated", []byte{0x80}, 32, false},
		{"empty", nil, 32, false},
		{"overlong-u32-6-bytes", []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, 32, false},
		{"u32-padding-bits", []byte{0x80, 0x80, 0x80, 0x80, 0x70}, 32, false},
		{"overlong-s32", []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x7F}, 32, true},
		{"s32-bad-padding", []byte{0x80, 0x80, 0x80, 0x80, 0x2F}, 32, true},
		{"s-truncated", []byte{0xFF, 0xFF}, 33, true},
	}
	for _, c := range cases {
		var err error
		if c.sign {
			_, _, err = readS(c.b, c.bits)
		} else {
			_, _, err = readU(c.b, c.bits)
		}
		if err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// testModule is a representative fixture with arithmetic, control flow,
// memory, multiple signatures, and a call.
func testModule() *Module {
	return BuildModule(
		FixtureFunc{
			Name: "addmul", Params: []ValType{I32, I32}, Results: []ValType{I32},
			Body: []Instr{LocalGet(0), LocalGet(1), Op(OpI32Add), LocalGet(0), Op(OpI32Mul)},
		},
		FixtureFunc{
			Name: "diamond", Params: []ValType{I32}, Results: []ValType{I32},
			Body: []Instr{
				LocalGet(0), I32Const(10), Op(OpI32LtS),
				If(ValTypeBlock(I32)),
				LocalGet(0), I32Const(2), Op(OpI32Mul),
				Else(),
				LocalGet(0), I32Const(1), Op(OpI32Add),
				End(),
			},
		},
		FixtureFunc{
			Name: "memrw", Params: []ValType{I32, I64}, Results: []ValType{I64},
			Body: []Instr{
				LocalGet(0), LocalGet(1), Mem(OpI64Store, 3, 8),
				LocalGet(0), Mem(OpI64Load, 3, 8),
			},
		},
		FixtureFunc{
			Name: "caller", Params: []ValType{I32}, Results: []ValType{I32},
			Body: []Instr{LocalGet(0), LocalGet(0), Call(0)},
		},
	)
}

func TestDecodeRoundTrip(t *testing.T) {
	m := testModule()
	enc := MustEncode(m)
	if !IsWasm(enc) {
		t.Fatal("encoded module does not sniff as wasm")
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(dec.Funcs) != len(m.Funcs) || len(dec.Types) != len(m.Types) ||
		len(dec.Exports) != len(m.Exports) || len(dec.Mems) != len(m.Mems) {
		t.Fatalf("structure mismatch: %+v", dec)
	}
	for i, f := range dec.Funcs {
		if f.BodyErr != nil {
			t.Fatalf("func %d: BodyErr %v", i, f.BodyErr)
		}
		if f.Name != m.Funcs[i].Name {
			t.Errorf("func %d: name %q, want %q", i, f.Name, m.Funcs[i].Name)
		}
		if len(f.Body) != len(m.Funcs[i].Body) {
			t.Errorf("func %d: %d instrs, want %d", i, len(f.Body), len(m.Funcs[i].Body))
		}
	}
	enc2, err := Encode(dec)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("round trip not byte-identical:\n%x\n%x", enc, enc2)
	}
}

func TestDecodeMalformed(t *testing.T) {
	valid := MustEncode(testModule())
	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad-magic", []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{"bad-version", mut(func(b []byte) []byte { b[4] = 9; return b })},
		{"truncated-module", valid[:len(valid)-3]},
		{"truncated-header", valid[:6]},
		{"section-overrun", mut(func(b []byte) []byte { b[9] = 0x7F; return b })},
		{"garbage-section-id", mut(func(b []byte) []byte { b[8] = 0x6F; return b })},
	}
	for _, c := range cases {
		if _, err := Decode(c.data); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDecodeSectionOrder(t *testing.T) {
	// type section after function section: out of order.
	bad := []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00,
		3, 2, 1, 0, // function section first
		1, 4, 1, 0x60, 0, 0, // then type section
	}
	if _, err := Decode(bad); err == nil {
		t.Fatal("expected section-order error")
	}
}

func TestDecodeBodyErrTolerated(t *testing.T) {
	m := BuildModule(
		FixtureFunc{Name: "good", Params: []ValType{I32}, Results: []ValType{I32},
			Body: []Instr{LocalGet(0)}},
		FixtureFunc{Name: "bad", Results: []ValType{I32},
			Body: []Instr{I32Const(1)}},
	)
	enc := MustEncode(m)
	// Corrupt the "bad" body: find its i32.const and replace with an
	// unknown opcode. The const 1 is the byte pair 0x41 0x01.
	idx := bytes.LastIndex(enc, []byte{OpI32Const, 0x01})
	if idx < 0 {
		t.Fatal("fixture encoding changed")
	}
	enc[idx] = 0xFE // not a valid MVP opcode
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode should tolerate per-body garbage, got %v", err)
	}
	if dec.Funcs[0].BodyErr != nil {
		t.Errorf("good function poisoned: %v", dec.Funcs[0].BodyErr)
	}
	if dec.Funcs[1].BodyErr == nil {
		t.Error("bad function should carry BodyErr")
	}
	_, st := Lift(dec, "m")
	if st.Lifted != 1 || st.Skipped != 1 || st.Reasons["body-undecoded"] != 1 {
		t.Errorf("lift stats = %+v, want 1 lifted / 1 body-undecoded", st)
	}
}

func TestDecoderLocalsBomb(t *testing.T) {
	// One function declaring 2^31 i32 locals in 6 bytes: must be rejected
	// per-function (BodyErr), not ballooned into memory.
	var body []byte
	body = appendU(body, 1)          // one local run
	body = appendU(body, 1<<31)      // count
	body = append(body, byte(I32))   // type
	body = append(body, byte(OpEnd)) // body
	mod := []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}
	mod = append(mod, 1, 4, 1, 0x60, 0, 0) // type () -> ()
	mod = append(mod, 3, 2, 1, 0)          // function section
	var code []byte
	code = appendU(code, 1)
	code = appendU(code, uint64(len(body)))
	code = append(code, body...)
	mod = append(mod, 10)
	mod = appendU(mod, uint64(len(code)))
	mod = append(mod, code...)
	dec, err := Decode(mod)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.Funcs[0].BodyErr == nil {
		t.Fatal("locals bomb not rejected")
	}
}
