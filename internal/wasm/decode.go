package wasm

import (
	"encoding/binary"
	"fmt"
)

var wasmMagic = [4]byte{0x00, 0x61, 0x73, 0x6D}

// IsWasm reports whether data starts with the wasm binary magic. Used by the
// cmds and the service to sniff binary modules out of otherwise textual
// inputs.
func IsWasm(data []byte) bool {
	return len(data) >= 4 &&
		data[0] == wasmMagic[0] && data[1] == wasmMagic[1] &&
		data[2] == wasmMagic[2] && data[3] == wasmMagic[3]
}

// decodeErrorf builds a structural decode error with a byte offset, so
// malformed-module reports point at the failing section.
func decodeErrorf(off int, format string, args ...any) error {
	return fmt.Errorf("wasm: offset %d: %s", off, fmt.Sprintf(format, args...))
}

// totalLocalsCap bounds the expanded local count per function. Local
// declarations are run-length encoded ((count, type) pairs with a u32
// count), so a 10-byte body can demand 2^32 locals — a classic decoder
// bomb. Functions beyond the cap fail to decode.
const totalLocalsCap = 1 << 16

// Decode parses a wasm binary module. Structural problems (bad magic,
// malformed sections, out-of-range indices) are errors; per-function body
// problems (unknown opcodes, truncated instructions) are tolerated and
// recorded as Function.BodyErr so the lifter can skip just that function
// with a counted reason.
func Decode(data []byte) (*Module, error) {
	if !IsWasm(data) {
		return nil, fmt.Errorf("wasm: bad magic")
	}
	if len(data) < 8 || binary.LittleEndian.Uint32(data[4:8]) != 1 {
		return nil, fmt.Errorf("wasm: unsupported version")
	}
	m := &Module{}
	var funcTypeIdxs []uint32 // function section, joined with code section
	pos := 8
	lastID := -1
	for pos < len(data) {
		id := data[pos]
		pos++
		size, n, err := readU(data[pos:], 32)
		if err != nil {
			return nil, decodeErrorf(pos, "section size: %v", err)
		}
		pos += n
		if uint64(len(data)-pos) < size {
			return nil, decodeErrorf(pos, "section 0x%02X overruns module (%d bytes declared, %d left)", id, size, len(data)-pos)
		}
		body := data[pos : pos+int(size)]
		pos += int(size)
		if id != 0 { // custom sections may appear anywhere
			if int(id) <= lastID {
				return nil, decodeErrorf(pos, "section 0x%02X out of order", id)
			}
			if id > 12 {
				return nil, decodeErrorf(pos, "unknown section id 0x%02X", id)
			}
			lastID = int(id)
		}
		switch id {
		case 1:
			if err := decodeTypeSection(m, body); err != nil {
				return nil, err
			}
		case 2:
			if err := decodeImportSection(m, body); err != nil {
				return nil, err
			}
		case 3:
			funcTypeIdxs, err = decodeFunctionSection(m, body)
			if err != nil {
				return nil, err
			}
		case 5:
			if err := decodeMemorySection(m, body); err != nil {
				return nil, err
			}
		case 7:
			if err := decodeExportSection(m, body); err != nil {
				return nil, err
			}
		case 10:
			if err := decodeCodeSection(m, body, funcTypeIdxs); err != nil {
				return nil, err
			}
		default:
			// Custom, table, global, start, elem, data, datacount: skipped
			// structurally (the size prefix already bounded them).
		}
	}
	if len(funcTypeIdxs) != len(m.Funcs) {
		return nil, fmt.Errorf("wasm: function section declares %d functions, code section has %d", len(funcTypeIdxs), len(m.Funcs))
	}
	// Attach export names to defined functions.
	imported := uint32(len(m.Imports))
	for _, e := range m.Exports {
		if e.Kind != 0 {
			continue
		}
		if e.Index >= imported && e.Index-imported < uint32(len(m.Funcs)) {
			f := m.Funcs[e.Index-imported]
			if f.Name == "" {
				f.Name = sanitizeName(e.Name)
			}
		}
	}
	for i, f := range m.Funcs {
		if f.Name == "" {
			f.Name = fmt.Sprintf("fn%d", int(imported)+i)
		}
	}
	return m, nil
}

func decodeTypeSection(m *Module, b []byte) error {
	count, n, err := readU(b, 32)
	if err != nil {
		return fmt.Errorf("wasm: type count: %v", err)
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		if len(b) == 0 || b[0] != 0x60 {
			return fmt.Errorf("wasm: type %d: expected functype tag 0x60", i)
		}
		b = b[1:]
		var ft FuncType
		ft.Params, b, err = decodeValTypeVec(b)
		if err != nil {
			return fmt.Errorf("wasm: type %d params: %v", i, err)
		}
		ft.Results, b, err = decodeValTypeVec(b)
		if err != nil {
			return fmt.Errorf("wasm: type %d results: %v", i, err)
		}
		m.Types = append(m.Types, ft)
	}
	return trailing("type", b)
}

func decodeValTypeVec(b []byte) ([]ValType, []byte, error) {
	count, n, err := readU(b, 32)
	if err != nil {
		return nil, b, err
	}
	b = b[n:]
	if uint64(len(b)) < count {
		return nil, b, errTruncated
	}
	var out []ValType
	for i := uint64(0); i < count; i++ {
		if !validValType(b[i]) {
			return nil, b, fmt.Errorf("invalid value type 0x%02X", b[i])
		}
		out = append(out, ValType(b[i]))
	}
	return out, b[count:], nil
}

func decodeName(b []byte) (string, []byte, error) {
	ln, n, err := readU(b, 32)
	if err != nil {
		return "", b, err
	}
	b = b[n:]
	if uint64(len(b)) < ln {
		return "", b, errTruncated
	}
	return string(b[:ln]), b[ln:], nil
}

func decodeLimits(b []byte) (MemType, []byte, error) {
	if len(b) == 0 {
		return MemType{}, b, errTruncated
	}
	flag := b[0]
	b = b[1:]
	if flag > 1 {
		return MemType{}, b, fmt.Errorf("invalid limits flag 0x%02X", flag)
	}
	mn, n, err := readU(b, 32)
	if err != nil {
		return MemType{}, b, err
	}
	b = b[n:]
	mt := MemType{Min: uint32(mn)}
	if flag == 1 {
		mx, n, err := readU(b, 32)
		if err != nil {
			return MemType{}, b, err
		}
		b = b[n:]
		mt.Max, mt.HasMax = uint32(mx), true
	}
	return mt, b, nil
}

func decodeImportSection(m *Module, b []byte) error {
	count, n, err := readU(b, 32)
	if err != nil {
		return fmt.Errorf("wasm: import count: %v", err)
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		var mod, name string
		mod, b, err = decodeName(b)
		if err != nil {
			return fmt.Errorf("wasm: import %d module: %v", i, err)
		}
		name, b, err = decodeName(b)
		if err != nil {
			return fmt.Errorf("wasm: import %d name: %v", i, err)
		}
		if len(b) == 0 {
			return errTruncated
		}
		kind := b[0]
		b = b[1:]
		switch kind {
		case 0x00: // function
			ti, n, err := readU(b, 32)
			if err != nil {
				return fmt.Errorf("wasm: import %d typeidx: %v", i, err)
			}
			b = b[n:]
			if ti >= uint64(len(m.Types)) {
				return fmt.Errorf("wasm: import %d: type index %d out of range", i, ti)
			}
			m.Imports = append(m.Imports, Import{Module: mod, Name: name, TypeIdx: uint32(ti)})
		case 0x01: // table: reftype + limits
			if len(b) == 0 {
				return errTruncated
			}
			b = b[1:]
			if _, b, err = decodeLimits(b); err != nil {
				return fmt.Errorf("wasm: import %d table: %v", i, err)
			}
		case 0x02: // memory
			var mt MemType
			if mt, b, err = decodeLimits(b); err != nil {
				return fmt.Errorf("wasm: import %d memory: %v", i, err)
			}
			m.Mems = append(m.Mems, mt)
		case 0x03: // global: valtype + mut
			if len(b) < 2 {
				return errTruncated
			}
			b = b[2:]
		default:
			return fmt.Errorf("wasm: import %d: unknown kind 0x%02X", i, kind)
		}
	}
	return trailing("import", b)
}

func decodeFunctionSection(m *Module, b []byte) ([]uint32, error) {
	count, n, err := readU(b, 32)
	if err != nil {
		return nil, fmt.Errorf("wasm: function count: %v", err)
	}
	b = b[n:]
	out := make([]uint32, 0, count)
	for i := uint64(0); i < count; i++ {
		ti, n, err := readU(b, 32)
		if err != nil {
			return nil, fmt.Errorf("wasm: function %d typeidx: %v", i, err)
		}
		b = b[n:]
		if ti >= uint64(len(m.Types)) {
			return nil, fmt.Errorf("wasm: function %d: type index %d out of range", i, ti)
		}
		out = append(out, uint32(ti))
	}
	if err := trailing("function", b); err != nil {
		return nil, err
	}
	return out, nil
}

func trailing(section string, b []byte) error {
	if len(b) != 0 {
		return fmt.Errorf("wasm: %s section has %d trailing bytes", section, len(b))
	}
	return nil
}

func decodeMemorySection(m *Module, b []byte) error {
	count, n, err := readU(b, 32)
	if err != nil {
		return fmt.Errorf("wasm: memory count: %v", err)
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		var mt MemType
		if mt, b, err = decodeLimits(b); err != nil {
			return fmt.Errorf("wasm: memory %d: %v", i, err)
		}
		m.Mems = append(m.Mems, mt)
	}
	return trailing("memory", b)
}

func decodeExportSection(m *Module, b []byte) error {
	count, n, err := readU(b, 32)
	if err != nil {
		return fmt.Errorf("wasm: export count: %v", err)
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		var name string
		name, b, err = decodeName(b)
		if err != nil {
			return fmt.Errorf("wasm: export %d name: %v", i, err)
		}
		if len(b) == 0 {
			return errTruncated
		}
		kind := b[0]
		b = b[1:]
		if kind > 3 {
			return fmt.Errorf("wasm: export %d: unknown kind 0x%02X", i, kind)
		}
		idx, n, err := readU(b, 32)
		if err != nil {
			return fmt.Errorf("wasm: export %d index: %v", i, err)
		}
		b = b[n:]
		m.Exports = append(m.Exports, Export{Name: name, Kind: kind, Index: uint32(idx)})
	}
	return trailing("export", b)
}

func decodeCodeSection(m *Module, b []byte, typeIdxs []uint32) error {
	count, n, err := readU(b, 32)
	if err != nil {
		return fmt.Errorf("wasm: code count: %v", err)
	}
	b = b[n:]
	if count != uint64(len(typeIdxs)) {
		return fmt.Errorf("wasm: code section has %d entries, function section declares %d", count, len(typeIdxs))
	}
	for i := uint64(0); i < count; i++ {
		size, n, err := readU(b, 32)
		if err != nil {
			return fmt.Errorf("wasm: code %d size: %v", i, err)
		}
		b = b[n:]
		if uint64(len(b)) < size {
			return fmt.Errorf("wasm: code %d overruns section", i)
		}
		entry := b[:size]
		b = b[size:]
		f := &Function{TypeIdx: typeIdxs[i]}
		// Locals and body decode tolerantly: a failure poisons only this
		// function (the lifter skips it with a counted reason).
		f.Locals, f.Body, f.BodyErr = decodeFuncBody(entry)
		m.Funcs = append(m.Funcs, f)
	}
	return trailing("code", b)
}

// decodeFuncBody decodes one code-section entry: run-length local
// declarations followed by the body expression (terminated by end).
func decodeFuncBody(b []byte) (locals []ValType, body []Instr, err error) {
	runs, n, err := readU(b, 32)
	if err != nil {
		return nil, nil, fmt.Errorf("local runs: %v", err)
	}
	b = b[n:]
	for i := uint64(0); i < runs; i++ {
		cnt, n, err := readU(b, 32)
		if err != nil {
			return nil, nil, fmt.Errorf("local run %d count: %v", i, err)
		}
		b = b[n:]
		if len(b) == 0 {
			return nil, nil, errTruncated
		}
		t := b[0]
		b = b[1:]
		if !validValType(t) {
			return nil, nil, fmt.Errorf("local run %d: invalid value type 0x%02X", i, t)
		}
		if uint64(len(locals))+cnt > totalLocalsCap {
			return nil, nil, fmt.Errorf("local count exceeds cap (%d)", totalLocalsCap)
		}
		for j := uint64(0); j < cnt; j++ {
			locals = append(locals, ValType(t))
		}
	}
	for len(b) > 0 {
		in, n, err := decodeInstr(b)
		if err != nil {
			return locals, nil, err
		}
		b = b[n:]
		body = append(body, in)
	}
	if len(body) == 0 || body[len(body)-1].Op != OpEnd {
		return locals, nil, fmt.Errorf("body does not end with end opcode")
	}
	return locals, body, nil
}

// decodeInstr decodes one instruction, returning it and the bytes consumed.
func decodeInstr(b []byte) (Instr, int, error) {
	if len(b) == 0 {
		return Instr{}, 0, errTruncated
	}
	op := b[0]
	in := Instr{Op: op}
	pos := 1
	switch {
	case op == OpBlock || op == OpLoop || op == OpIf:
		bt, n, err := readS(b[pos:], 33)
		if err != nil {
			return in, 0, fmt.Errorf("blocktype: %w", err)
		}
		if bt < 0 && bt != BlockTypeEmpty && !validValType(byte(bt&0x7f)) {
			return in, 0, fmt.Errorf("invalid blocktype %d", bt)
		}
		in.BlockType = bt
		pos += n
	case op == OpBr || op == OpBrIf || op == OpCall ||
		(op >= OpLocalGet && op <= OpGlobalSet):
		x, n, err := readU(b[pos:], 32)
		if err != nil {
			return in, 0, fmt.Errorf("index: %w", err)
		}
		in.X = x
		pos += n
	case op == OpCallIndirect:
		ti, n, err := readU(b[pos:], 32)
		if err != nil {
			return in, 0, fmt.Errorf("call_indirect type: %w", err)
		}
		in.X = ti
		pos += n
		_, n, err = readU(b[pos:], 32) // table index
		if err != nil {
			return in, 0, fmt.Errorf("call_indirect table: %w", err)
		}
		pos += n
	case op == OpBrTable:
		cnt, n, err := readU(b[pos:], 32)
		if err != nil {
			return in, 0, fmt.Errorf("br_table count: %w", err)
		}
		pos += n
		if cnt > uint64(len(b)) { // each target is at least one byte
			return in, 0, errTruncated
		}
		for i := uint64(0); i <= cnt; i++ { // targets plus default
			t, n, err := readU(b[pos:], 32)
			if err != nil {
				return in, 0, fmt.Errorf("br_table target: %w", err)
			}
			in.Table = append(in.Table, uint32(t))
			pos += n
		}
	case op >= OpI32Load && op <= OpI64Store32:
		a, n, err := readU(b[pos:], 32)
		if err != nil {
			return in, 0, fmt.Errorf("memarg align: %w", err)
		}
		pos += n
		off, n, err := readU(b[pos:], 32)
		if err != nil {
			return in, 0, fmt.Errorf("memarg offset: %w", err)
		}
		pos += n
		in.Align, in.Offset = uint32(a), uint32(off)
	case op == OpMemorySize || op == OpMemoryGrow:
		x, n, err := readU(b[pos:], 32)
		if err != nil {
			return in, 0, fmt.Errorf("memory index: %w", err)
		}
		in.X = x
		pos += n
	case op == OpI32Const:
		v, n, err := readS(b[pos:], 32)
		if err != nil {
			return in, 0, fmt.Errorf("i32.const: %w", err)
		}
		in.X = uint64(v)
		pos += n
	case op == OpI64Const:
		v, n, err := readS(b[pos:], 64)
		if err != nil {
			return in, 0, fmt.Errorf("i64.const: %w", err)
		}
		in.X = uint64(v)
		pos += n
	case op == OpF32Const:
		if len(b) < pos+4 {
			return in, 0, errTruncated
		}
		in.X = uint64(binary.LittleEndian.Uint32(b[pos:]))
		pos += 4
	case op == OpF64Const:
		if len(b) < pos+8 {
			return in, 0, errTruncated
		}
		in.X = binary.LittleEndian.Uint64(b[pos:])
		pos += 8
	case op == 0x1C: // typed select: vec(valtype)
		cnt, n, err := readU(b[pos:], 32)
		if err != nil {
			return in, 0, fmt.Errorf("select types: %w", err)
		}
		pos += n
		if uint64(len(b)-pos) < cnt {
			return in, 0, errTruncated
		}
		pos += int(cnt)
		in.Op = OpSelect // same stack behavior once decoded
	case op == OpUnreachable || op == OpNop || op == OpElse || op == OpEnd ||
		op == OpReturn || op == OpDrop || op == OpSelect:
		// no immediates
	case op >= OpI32Eqz && op <= 0xBF:
		// numeric ops (including float arithmetic, compares, conversions,
		// and reinterprets): no immediates
	case op >= OpI32Extend8S && op <= OpI64Extend32S:
		// sign-extension ops: no immediates
	default:
		return in, 0, fmt.Errorf("unknown opcode 0x%02X", op)
	}
	return in, pos, nil
}

// sanitizeName maps an export name onto the identifier charset the ir
// printer/parser agree on.
func sanitizeName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return ""
	}
	return string(out)
}
