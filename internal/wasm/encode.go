package wasm

import (
	"encoding/binary"
	"fmt"
)

// Encode serializes a Module back to the wasm binary format. Functions
// whose bodies failed to decode cannot be re-encoded.
func Encode(m *Module) ([]byte, error) {
	out := []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}

	if len(m.Types) > 0 {
		var b []byte
		b = appendU(b, uint64(len(m.Types)))
		for _, t := range m.Types {
			b = append(b, 0x60)
			b = appendU(b, uint64(len(t.Params)))
			for _, p := range t.Params {
				b = append(b, byte(p))
			}
			b = appendU(b, uint64(len(t.Results)))
			for _, r := range t.Results {
				b = append(b, byte(r))
			}
		}
		out = appendSection(out, 1, b)
	}

	if len(m.Imports) > 0 {
		var b []byte
		b = appendU(b, uint64(len(m.Imports)))
		for _, im := range m.Imports {
			b = appendName(b, im.Module)
			b = appendName(b, im.Name)
			b = append(b, 0x00)
			b = appendU(b, uint64(im.TypeIdx))
		}
		out = appendSection(out, 2, b)
	}

	if len(m.Funcs) > 0 {
		var b []byte
		b = appendU(b, uint64(len(m.Funcs)))
		for _, f := range m.Funcs {
			b = appendU(b, uint64(f.TypeIdx))
		}
		out = appendSection(out, 3, b)
	}

	if len(m.Mems) > 0 {
		var b []byte
		b = appendU(b, uint64(len(m.Mems)))
		for _, mt := range m.Mems {
			b = appendLimits(b, mt)
		}
		out = appendSection(out, 5, b)
	}

	if len(m.Exports) > 0 {
		var b []byte
		b = appendU(b, uint64(len(m.Exports)))
		for _, e := range m.Exports {
			b = appendName(b, e.Name)
			b = append(b, e.Kind)
			b = appendU(b, uint64(e.Index))
		}
		out = appendSection(out, 7, b)
	}

	if len(m.Funcs) > 0 {
		var b []byte
		b = appendU(b, uint64(len(m.Funcs)))
		for i, f := range m.Funcs {
			if f.BodyErr != nil {
				return nil, fmt.Errorf("wasm: function %d: cannot re-encode undecoded body (%v)", i, f.BodyErr)
			}
			entry := encodeLocals(nil, f.Locals)
			for _, in := range f.Body {
				entry = appendInstr(entry, in)
			}
			b = appendU(b, uint64(len(entry)))
			b = append(b, entry...)
		}
		out = appendSection(out, 10, b)
	}
	return out, nil
}

func appendSection(out []byte, id byte, body []byte) []byte {
	out = append(out, id)
	out = appendU(out, uint64(len(body)))
	return append(out, body...)
}

func appendName(b []byte, s string) []byte {
	b = appendU(b, uint64(len(s)))
	return append(b, s...)
}

func appendLimits(b []byte, mt MemType) []byte {
	if mt.HasMax {
		b = append(b, 1)
		b = appendU(b, uint64(mt.Min))
		return appendU(b, uint64(mt.Max))
	}
	b = append(b, 0)
	return appendU(b, uint64(mt.Min))
}

// encodeLocals run-length compresses the expanded local declarations.
func encodeLocals(b []byte, locals []ValType) []byte {
	type run struct {
		t ValType
		n uint64
	}
	var runs []run
	for _, t := range locals {
		if len(runs) > 0 && runs[len(runs)-1].t == t {
			runs[len(runs)-1].n++
		} else {
			runs = append(runs, run{t, 1})
		}
	}
	b = appendU(b, uint64(len(runs)))
	for _, r := range runs {
		b = appendU(b, r.n)
		b = append(b, byte(r.t))
	}
	return b
}

func appendInstr(b []byte, in Instr) []byte {
	b = append(b, in.Op)
	switch {
	case in.Op == OpBlock || in.Op == OpLoop || in.Op == OpIf:
		b = appendS(b, in.BlockType)
	case in.Op == OpBr || in.Op == OpBrIf || in.Op == OpCall ||
		(in.Op >= OpLocalGet && in.Op <= OpGlobalSet) ||
		in.Op == OpMemorySize || in.Op == OpMemoryGrow:
		b = appendU(b, in.X)
	case in.Op == OpCallIndirect:
		b = appendU(b, in.X)
		b = appendU(b, 0) // table index
	case in.Op == OpBrTable:
		b = appendU(b, uint64(len(in.Table)-1))
		for _, t := range in.Table {
			b = appendU(b, uint64(t))
		}
	case in.Op >= OpI32Load && in.Op <= OpI64Store32:
		b = appendU(b, uint64(in.Align))
		b = appendU(b, uint64(in.Offset))
	case in.Op == OpI32Const:
		b = appendS(b, int64(int32(uint32(in.X))))
	case in.Op == OpI64Const:
		b = appendS(b, int64(in.X))
	case in.Op == OpF32Const:
		var le [4]byte
		binary.LittleEndian.PutUint32(le[:], uint32(in.X))
		b = append(b, le[:]...)
	case in.Op == OpF64Const:
		var le [8]byte
		binary.LittleEndian.PutUint64(le[:], in.X)
		b = append(b, le[:]...)
	}
	return b
}
