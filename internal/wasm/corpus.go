package wasm

// Fixture is one embedded wasm binary module.
type Fixture struct {
	Name string
	Data []byte
}

// Fixtures returns the embedded wasm fixture corpus: deterministic,
// hand-assembled binary modules spanning the supported integer subset —
// including planted missed-optimization windows (the (x&y)^(x|y) family
// the knowledge base closes) — plus functions outside the subset so
// campaigns exercise skip accounting. Campaigns, service tests, and the
// CI end-to-end smoke all hunt over these.
func Fixtures() []Fixture {
	planted := BuildModule(
		FixtureFunc{
			// (x&y)^(x|y) == x^y: the missed-optimization window the
			// rulebook smoke closes at i16, planted here at i32.
			Name: "masked_xor32", Params: []ValType{I32, I32}, Results: []ValType{I32},
			Body: []Instr{
				LocalGet(0), LocalGet(1), Op(OpI32And),
				LocalGet(0), LocalGet(1), Op(OpI32Or),
				Op(OpI32Xor),
			},
		},
		FixtureFunc{
			Name: "masked_xor64", Params: []ValType{I64, I64}, Results: []ValType{I64},
			Body: []Instr{
				LocalGet(0), LocalGet(1), Op(OpI64And),
				LocalGet(0), LocalGet(1), Op(OpI64Or),
				Op(OpI64Xor),
			},
		},
		FixtureFunc{
			// Filler arithmetic around the planted windows.
			Name: "mix32", Params: []ValType{I32, I32}, Results: []ValType{I32},
			Body: []Instr{
				LocalGet(0), LocalGet(1), Op(OpI32Add),
				LocalGet(0), I32Const(13), Op(OpI32Mul),
				Op(OpI32Sub),
			},
		},
	)
	arith := BuildModule(
		FixtureFunc{
			Name: "shifty", Params: []ValType{I32, I32}, Results: []ValType{I32},
			Body: []Instr{
				LocalGet(0), LocalGet(1), Op(OpI32Shl),
				LocalGet(0), LocalGet(1), Op(OpI32ShrU),
				Op(OpI32Or),
				LocalGet(1), Op(OpI32Popcnt),
				Op(OpI32Add),
			},
		},
		FixtureFunc{
			Name: "rotsum", Params: []ValType{I64, I64}, Results: []ValType{I64},
			Body: []Instr{
				LocalGet(0), LocalGet(1), Op(OpI64Rotl),
				LocalGet(0), LocalGet(1), Op(OpI64Rotr),
				Op(OpI64Xor),
			},
		},
		FixtureFunc{
			Name: "clamp", Params: []ValType{I32, I32}, Results: []ValType{I32},
			Body: []Instr{
				LocalGet(0), LocalGet(1),
				LocalGet(0), LocalGet(1), Op(OpI32LtS),
				Op(OpSelect),
			},
		},
		FixtureFunc{
			Name: "widen", Params: []ValType{I32, I32}, Results: []ValType{I64},
			Body: []Instr{
				LocalGet(0), Op(OpI64ExtendI32S),
				LocalGet(1), Op(OpI64ExtendI32U),
				Op(OpI64Mul),
			},
		},
	)
	control := BuildModule(
		FixtureFunc{
			Name: "diamond", Params: []ValType{I32}, Results: []ValType{I32},
			Body: []Instr{
				LocalGet(0), I32Const(16), Op(OpI32LtU),
				If(ValTypeBlock(I32)),
				LocalGet(0), I32Const(3), Op(OpI32Mul),
				Else(),
				LocalGet(0), I32Const(5), Op(OpI32Sub),
				End(),
			},
		},
		FixtureFunc{
			Name: "sumto", Params: []ValType{I32}, Results: []ValType{I32},
			Locals: []ValType{I32, I32},
			Body: []Instr{
				Block(BlockTypeEmpty),
				Loop(BlockTypeEmpty),
				LocalGet(1), LocalGet(0), Op(OpI32GeU), BrIf(1),
				LocalGet(2), LocalGet(1), Op(OpI32Add), LocalSet(2),
				LocalGet(1), I32Const(1), Op(OpI32Add), LocalSet(1),
				Br(0),
				End(),
				End(),
				LocalGet(2),
			},
		},
	)
	memory := BuildModule(
		FixtureFunc{
			Name: "swap_add", Params: []ValType{I32}, Results: []ValType{I32},
			Body: []Instr{
				LocalGet(0), Mem(OpI32Load, 2, 0),
				LocalGet(0), Mem(OpI32Load, 2, 4),
				Op(OpI32Add),
			},
		},
	)
	mixed := BuildModule(
		FixtureFunc{
			Name: "ok", Params: []ValType{I32}, Results: []ValType{I32},
			Body: []Instr{LocalGet(0), LocalGet(0), Op(OpI32And)},
		},
		FixtureFunc{
			Name: "helper", Params: []ValType{I32}, Results: []ValType{I32},
			Body: []Instr{LocalGet(0), Call(0)},
		},
		FixtureFunc{
			Name: "fsrc", Params: []ValType{F32}, Results: []ValType{F32},
			Body: []Instr{LocalGet(0)},
		},
	)
	return []Fixture{
		{Name: "planted.wasm", Data: MustEncode(planted)},
		{Name: "arith.wasm", Data: MustEncode(arith)},
		{Name: "control.wasm", Data: MustEncode(control)},
		{Name: "memory.wasm", Data: MustEncode(memory)},
		{Name: "mixed.wasm", Data: MustEncode(mixed)},
	}
}
