package wasm

import (
	"testing"

	"repro/internal/interp"
)

// execLifted lifts fn from m and runs it on args, returning the i32 result.
func execLifted(t *testing.T, m *Module, name string, args []uint64) interp.Result {
	t.Helper()
	fn := liftOne(t, m, name)
	env := interp.Env{}
	for i := range args {
		env.Args = append(env.Args, interp.Scalar(fn.Params[i].Ty, args[i]))
	}
	return interp.Exec(fn, env)
}

// Nested loops: sum += i*j for i in [0,p0), j in [0,p1).
func TestProbeNestedLoops(t *testing.T) {
	// locals: 2 params (p0,p1), locals: i(2), j(3), sum(4)
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32, I32}, Results: []ValType{I32},
		Locals: []ValType{I32, I32, I32},
		Body: []Instr{
			Block(BlockTypeEmpty),                           // outer exit
			Loop(BlockTypeEmpty),                            // outer loop
			LocalGet(2), LocalGet(0), Op(OpI32GeU), BrIf(1), // i >= p0 -> exit
			I32Const(0), LocalSet(3), // j = 0
			Block(BlockTypeEmpty),
			Loop(BlockTypeEmpty),
			LocalGet(3), LocalGet(1), Op(OpI32GeU), BrIf(1), // j >= p1 -> inner exit
			LocalGet(4), LocalGet(2), LocalGet(3), Op(OpI32Mul), Op(OpI32Add), LocalSet(4),
			LocalGet(3), I32Const(1), Op(OpI32Add), LocalSet(3),
			Br(0),
			End(), End(), // inner loop, inner block
			LocalGet(2), I32Const(1), Op(OpI32Add), LocalSet(2),
			Br(0),
			End(), End(), // outer loop, outer block
			LocalGet(4),
		},
	})
	for _, tc := range [][3]uint64{{0, 0, 0}, {1, 1, 0}, {3, 4, 18}, {5, 5, 100}} {
		res := execLifted(t, m, "f", []uint64{tc[0], tc[1]})
		if res.UB || !res.Completed {
			t.Fatalf("args %v: UB=%v completed=%v", tc, res.UB, res.Completed)
		}
		if got := res.Ret.Lanes[0].V & 0xFFFFFFFF; got != tc[2] {
			t.Fatalf("args %v: got %d want %d", tc, got, tc[2])
		}
	}
}

// If inside a loop modifying a local on one arm only; local merged at join.
func TestProbeIfInLoop(t *testing.T) {
	// count odd numbers in [0, p0): local1=i, local2=acc
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32}, Results: []ValType{I32},
		Locals: []ValType{I32, I32},
		Body: []Instr{
			Block(BlockTypeEmpty),
			Loop(BlockTypeEmpty),
			LocalGet(1), LocalGet(0), Op(OpI32GeU), BrIf(1),
			LocalGet(1), I32Const(1), Op(OpI32And),
			If(BlockTypeEmpty),
			LocalGet(2), I32Const(1), Op(OpI32Add), LocalSet(2),
			End(),
			LocalGet(1), I32Const(1), Op(OpI32Add), LocalSet(1),
			Br(0),
			End(), End(),
			LocalGet(2),
		},
	})
	for _, tc := range [][2]uint64{{0, 0}, {1, 0}, {2, 1}, {7, 3}, {10, 5}} {
		res := execLifted(t, m, "f", []uint64{tc[0]})
		if res.UB || !res.Completed {
			t.Fatalf("args %v: UB=%v completed=%v", tc, res.UB, res.Completed)
		}
		if got := res.Ret.Lanes[0].V & 0xFFFFFFFF; got != tc[1] {
			t.Fatalf("args %v: got %d want %d", tc, got, tc[1])
		}
	}
}

// Block with a result fed by both a br_if edge and fallthrough, plus an
// if/else that returns from one arm.
func TestProbeBlockResultAndEarlyReturn(t *testing.T) {
	// f(p) = p==0 ? 42 : (p > 10 ? 99 : p+1)
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32}, Results: []ValType{I32},
		Body: []Instr{
			LocalGet(0), Op(OpI32Eqz),
			If(BlockTypeEmpty),
			I32Const(42), Instr{Op: OpReturn},
			End(),
			Block(ValTypeBlock(I32)),
			I32Const(99),
			LocalGet(0), I32Const(10), Op(OpI32GtU), BrIf(0), // p>10 -> 99
			Op(OpDrop),
			LocalGet(0), I32Const(1), Op(OpI32Add),
			End(),
		},
	})
	for _, tc := range [][2]uint64{{0, 42}, {1, 2}, {10, 11}, {11, 99}, {0xFFFFFFFF, 99}} {
		res := execLifted(t, m, "f", []uint64{tc[0]})
		if res.UB || !res.Completed {
			t.Fatalf("args %v: UB=%v completed=%v", tc, res.UB, res.Completed)
		}
		if got := res.Ret.Lanes[0].V & 0xFFFFFFFF; got != tc[1] {
			t.Fatalf("args %v: got %d want %d", tc, got, tc[1])
		}
	}
}

// Unreachable-code handling: code after br skipped, including nested
// structures, then reactivation at the enclosing end.
func TestProbeUnreachableSkip(t *testing.T) {
	// f(p) = p+1, with dead code after an unconditional br containing a
	// nested if/else and loop.
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32}, Results: []ValType{I32},
		Body: []Instr{
			Block(BlockTypeEmpty),
			Br(0),
			Loop(BlockTypeEmpty), Br(0), End(),
			I32Const(7), If(BlockTypeEmpty), Else(), End(),
			End(),
			LocalGet(0), I32Const(1), Op(OpI32Add),
		},
	})
	for _, tc := range [][2]uint64{{0, 1}, {41, 42}} {
		res := execLifted(t, m, "f", []uint64{tc[0]})
		if res.UB || !res.Completed {
			t.Fatalf("args %v: UB=%v completed=%v", tc, res.UB, res.Completed)
		}
		if got := res.Ret.Lanes[0].V & 0xFFFFFFFF; got != tc[1] {
			t.Fatalf("args %v: got %d want %d", tc, got, tc[1])
		}
	}
}
