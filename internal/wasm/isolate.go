package wasm

import (
	"fmt"
	"sort"
)

// Isolate carves the defined function with the given absolute index (the
// import-inclusive wasm index space) plus its transitive callees out of m,
// producing a minimal self-contained module: only the types, imports,
// functions, and memory the slice needs, with every call immediate and
// type index remapped, and the target function exported. This is the
// wasm-isolate trick: shrink a finding's provenance from a whole module to
// the one function (plus deps) that produced the window.
func Isolate(m *Module, fnIdx uint32) (*Module, error) {
	imported := uint32(len(m.Imports))
	if fnIdx < imported {
		return nil, fmt.Errorf("wasm: isolate: function %d is imported", fnIdx)
	}
	if fnIdx-imported >= uint32(len(m.Funcs)) {
		return nil, fmt.Errorf("wasm: isolate: function index %d out of range", fnIdx)
	}

	// Transitive closure over direct call edges.
	keep := map[uint32]bool{}
	work := []uint32{fnIdx}
	for len(work) > 0 {
		idx := work[len(work)-1]
		work = work[:len(work)-1]
		if keep[idx] {
			continue
		}
		keep[idx] = true
		if idx < imported {
			continue
		}
		f := m.Funcs[idx-imported]
		if f.BodyErr != nil {
			return nil, fmt.Errorf("wasm: isolate: function %d has an undecoded body: %v", idx, f.BodyErr)
		}
		for _, in := range f.Body {
			switch in.Op {
			case OpCall:
				callee := uint32(in.X)
				if _, ok := m.TypeOf(callee); !ok {
					return nil, fmt.Errorf("wasm: isolate: function %d calls out-of-range function %d", idx, callee)
				}
				work = append(work, callee)
			case OpCallIndirect:
				return nil, fmt.Errorf("wasm: isolate: function %d uses call_indirect (tables not modeled)", idx)
			}
		}
	}

	// New index space: kept imports first, kept defined functions after,
	// both in original order.
	var kept []uint32
	for idx := range keep {
		kept = append(kept, idx)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
	fnMap := map[uint32]uint32{}
	out := &Module{}
	typeMap := map[uint32]uint32{}
	mapType := func(ti uint32) uint32 {
		if nt, ok := typeMap[ti]; ok {
			return nt
		}
		nt := uint32(len(out.Types))
		typeMap[ti] = nt
		out.Types = append(out.Types, m.Types[ti])
		return nt
	}
	for _, idx := range kept {
		if idx < imported {
			im := m.Imports[idx]
			fnMap[idx] = uint32(len(out.Imports))
			out.Imports = append(out.Imports, Import{
				Module: im.Module, Name: im.Name, TypeIdx: mapType(im.TypeIdx),
			})
		}
	}
	touchesMem := false
	for _, idx := range kept {
		if idx < imported {
			continue
		}
		f := m.Funcs[idx-imported]
		fnMap[idx] = uint32(len(out.Imports) + len(out.Funcs))
		nf := &Function{
			TypeIdx: mapType(f.TypeIdx),
			Name:    f.Name,
			Locals:  append([]ValType(nil), f.Locals...),
			Body:    append([]Instr(nil), f.Body...),
		}
		for _, in := range nf.Body {
			if in.Op >= OpI32Load && in.Op <= OpMemoryGrow {
				touchesMem = true
			}
		}
		out.Funcs = append(out.Funcs, nf)
	}
	// Remap call immediates now that every kept function has a new index.
	for _, nf := range out.Funcs {
		for i, in := range nf.Body {
			if in.Op == OpCall {
				nf.Body[i].X = uint64(fnMap[uint32(in.X)])
			}
		}
	}
	if touchesMem {
		if len(m.Mems) > 0 {
			out.Mems = append(out.Mems, m.Mems...)
		} else {
			out.Mems = []MemType{{Min: 1}}
		}
	}
	name := m.Funcs[fnIdx-imported].Name
	if name == "" {
		name = "isolated"
	}
	out.Exports = []Export{{Name: name, Kind: 0, Index: fnMap[fnIdx]}}
	return out, nil
}

// IsolateByName isolates the defined function with the given lifted name.
func IsolateByName(m *Module, name string) (*Module, error) {
	for i, f := range m.Funcs {
		if f.Name == name {
			return Isolate(m, uint32(len(m.Imports)+i))
		}
	}
	return nil, fmt.Errorf("wasm: isolate: no function named %q", name)
}
