package wasm

// Hand-assembled fixture modules: deterministic wasm binaries used by the
// embedded corpus, the differential tests, and the CI end-to-end smoke.
// Everything is built through the instruction constructors below and
// serialized with Encode, so the fixtures are real binary modules that
// exercise the decoder, not just the lifter.

// FixtureFunc describes one function of a fixture module.
type FixtureFunc struct {
	Name    string
	Params  []ValType
	Results []ValType
	Locals  []ValType
	Body    []Instr // without the final end; BuildModule appends it
}

// BuildModule assembles a module from fixture functions: signatures are
// deduplicated into the type section, every named function is exported,
// and a one-page memory is declared when any body touches linear memory.
func BuildModule(funcs ...FixtureFunc) *Module {
	m := &Module{}
	touchesMem := false
	for _, ff := range funcs {
		sig := FuncType{Params: ff.Params, Results: ff.Results}
		ti := -1
		for i, t := range m.Types {
			if t.Equal(sig) {
				ti = i
				break
			}
		}
		if ti < 0 {
			ti = len(m.Types)
			m.Types = append(m.Types, sig)
		}
		body := append(append([]Instr(nil), ff.Body...), End())
		for _, in := range body {
			if in.Op >= OpI32Load && in.Op <= OpMemoryGrow {
				touchesMem = true
			}
		}
		idx := uint32(len(m.Funcs))
		m.Funcs = append(m.Funcs, &Function{
			TypeIdx: uint32(ti),
			Name:    ff.Name,
			Locals:  ff.Locals,
			Body:    body,
		})
		if ff.Name != "" {
			m.Exports = append(m.Exports, Export{Name: ff.Name, Kind: 0, Index: idx})
		}
	}
	if touchesMem {
		m.Mems = []MemType{{Min: 1}}
	}
	return m
}

// MustEncode serializes m, panicking on failure (fixtures are programmatic
// and cannot legitimately fail to encode).
func MustEncode(m *Module) []byte {
	b, err := Encode(m)
	if err != nil {
		panic(err)
	}
	return b
}

// Instruction constructors for fixture bodies.

// Op builds an immediate-free instruction (arithmetic, compare, drop, ...).
func Op(op byte) Instr { return Instr{Op: op} }

// I32Const pushes a 32-bit constant.
func I32Const(v int32) Instr { return Instr{Op: OpI32Const, X: uint64(int64(v))} }

// I64Const pushes a 64-bit constant.
func I64Const(v int64) Instr { return Instr{Op: OpI64Const, X: uint64(v)} }

// LocalGet reads a local or parameter.
func LocalGet(i uint32) Instr { return Instr{Op: OpLocalGet, X: uint64(i)} }

// LocalSet writes a local.
func LocalSet(i uint32) Instr { return Instr{Op: OpLocalSet, X: uint64(i)} }

// LocalTee writes a local, keeping the value on the stack.
func LocalTee(i uint32) Instr { return Instr{Op: OpLocalTee, X: uint64(i)} }

// Block opens a block with the given block type (BlockTypeEmpty or a
// ValTypeBlock).
func Block(bt int64) Instr { return Instr{Op: OpBlock, BlockType: bt} }

// Loop opens a loop.
func Loop(bt int64) Instr { return Instr{Op: OpLoop, BlockType: bt} }

// If opens an if.
func If(bt int64) Instr { return Instr{Op: OpIf, BlockType: bt} }

// Else separates the arms of an if.
func Else() Instr { return Instr{Op: OpElse} }

// End closes a block, loop, if, or function body.
func End() Instr { return Instr{Op: OpEnd} }

// Br branches unconditionally to relative depth d.
func Br(d uint32) Instr { return Instr{Op: OpBr, X: uint64(d)} }

// BrIf branches conditionally to relative depth d.
func BrIf(d uint32) Instr { return Instr{Op: OpBrIf, X: uint64(d)} }

// Call calls the function with the given absolute index.
func Call(f uint32) Instr { return Instr{Op: OpCall, X: uint64(f)} }

// Mem builds a load/store with the given memarg.
func Mem(op byte, align, offset uint32) Instr {
	return Instr{Op: op, Align: align, Offset: offset}
}

// ValTypeBlock converts a value type into its (negative) s33 block type.
func ValTypeBlock(t ValType) int64 { return int64(int8(byte(t) | 0x80)) }
