package wasm

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

// liftOne builds, encodes, decodes, and lifts a fixture module, returning
// the named lifted function. Going through the binary round trip means the
// differential tests cover the decoder too, not just the lifter.
func liftOne(t *testing.T, m *Module, name string) *ir.Func {
	t.Helper()
	dec, err := Decode(MustEncode(m))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	lifted, st := Lift(dec, "test")
	fn := lifted.FuncByName(name)
	if fn == nil {
		t.Fatalf("function %q not lifted (stats: %s)", name, st)
	}
	return fn
}

// memBase is where the linear-memory region lives in the differential
// executions; memSize bytes are mapped.
const (
	memBase = 0x10000
	memSize = 64
)

// diffExec runs the lifted and the directly-constructed function on the
// same inputs and requires identical outcomes: same UB verdict, same
// completion, same value/poison. withMem appends a fresh linear-memory
// region (and its base pointer argument) to each execution.
func diffExec(t *testing.T, lifted, manual *ir.Func, argRows [][]uint64, withMem bool) {
	t.Helper()
	if len(lifted.Params) != len(manual.Params) {
		t.Fatalf("param mismatch: lifted %d, manual %d", len(lifted.Params), len(manual.Params))
	}
	for _, row := range argRows {
		run := func(fn *ir.Func) interp.Result {
			env := interp.Env{}
			nargs := len(fn.Params)
			if withMem {
				nargs-- // the trailing %mem pointer is appended below
			}
			for i := 0; i < nargs; i++ {
				env.Args = append(env.Args, interp.Scalar(fn.Params[i].Ty, row[i]))
			}
			if withMem {
				env.Mem = interp.NewMemory()
				env.Mem.AddRegion("mem", memBase, memSize)
				env.Args = append(env.Args, interp.Scalar(ir.Ptr, memBase))
			}
			return interp.Exec(fn, env)
		}
		got, want := run(lifted), run(manual)
		if got.UB != want.UB {
			t.Fatalf("args %v: UB mismatch: lifted %v (%s), manual %v (%s)\nlifted:\n%s",
				row, got.UB, got.UBReason, want.UB, want.UBReason, lifted)
		}
		if got.UB {
			continue
		}
		if got.Completed != want.Completed {
			t.Fatalf("args %v: completion mismatch", row)
		}
		if !got.Ret.Equal(want.Ret) {
			t.Fatalf("args %v: result mismatch: lifted %s, manual %s\nlifted:\n%s",
				row, got.Ret.Format(), want.Ret.Format(), lifted)
		}
	}
}

func params(ts ...ir.Type) []*ir.Param {
	out := make([]*ir.Param, len(ts))
	for i, t := range ts {
		out[i] = &ir.Param{Nm: "p" + string(rune('0'+i)), Ty: t}
	}
	return out
}

var i32Rows = [][]uint64{
	{0, 0}, {1, 1}, {2, 3}, {7, 31}, {41, 1}, {13, 40},
	{0x7FFFFFFF, 1}, {0x80000000, 0xFFFFFFFF}, {0xFFFFFFFF, 2},
	{0xDEADBEEF, 0x12345678}, {5, 0},
}

func TestLiftArith(t *testing.T) {
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32, I32}, Results: []ValType{I32},
		Body: []Instr{
			LocalGet(0), LocalGet(1), Op(OpI32Add),
			LocalGet(0), Op(OpI32Mul),
			LocalGet(1), Op(OpI32Sub),
		},
	})
	ps := params(ir.I32, ir.I32)
	add := ir.Bin(ir.OpAdd, "a", ir.NoFlags, ps[0], ps[1])
	mul := ir.Bin(ir.OpMul, "m", ir.NoFlags, add, ps[0])
	sub := ir.Bin(ir.OpSub, "s", ir.NoFlags, mul, ps[1])
	manual := ir.NewFunc("f", ir.I32, ps, []*ir.Instr{add, mul, sub, ir.RetI(sub)})
	diffExec(t, liftOne(t, m, "f"), manual, i32Rows, false)
}

func TestLiftBitwise(t *testing.T) {
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32, I32}, Results: []ValType{I32},
		Body: []Instr{
			LocalGet(0), LocalGet(1), Op(OpI32And),
			LocalGet(0), LocalGet(1), Op(OpI32Or),
			Op(OpI32Xor),
		},
	})
	ps := params(ir.I32, ir.I32)
	and := ir.Bin(ir.OpAnd, "a", ir.NoFlags, ps[0], ps[1])
	or := ir.Bin(ir.OpOr, "o", ir.NoFlags, ps[0], ps[1])
	xor := ir.Bin(ir.OpXor, "x", ir.NoFlags, and, or)
	manual := ir.NewFunc("f", ir.I32, ps, []*ir.Instr{and, or, xor, ir.RetI(xor)})
	diffExec(t, liftOne(t, m, "f"), manual, i32Rows, false)
}

func TestLiftShiftsAreModWidth(t *testing.T) {
	// Wasm shifts reduce the count mod width; the lift must mask so that a
	// count of 40 shifts by 8 instead of producing poison.
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32, I32}, Results: []ValType{I32},
		Body: []Instr{
			LocalGet(0), LocalGet(1), Op(OpI32Shl),
			LocalGet(0), LocalGet(1), Op(OpI32ShrU),
			Op(OpI32Xor),
			LocalGet(0), LocalGet(1), Op(OpI32ShrS),
			Op(OpI32Add),
		},
	})
	ps := params(ir.I32, ir.I32)
	mask := ir.Bin(ir.OpAnd, "m", ir.NoFlags, ps[1], ir.CInt(ir.I32, 31))
	shl := ir.Bin(ir.OpShl, "sl", ir.NoFlags, ps[0], mask)
	shr := ir.Bin(ir.OpLShr, "sr", ir.NoFlags, ps[0], mask)
	xor := ir.Bin(ir.OpXor, "x", ir.NoFlags, shl, shr)
	ashr := ir.Bin(ir.OpAShr, "sa", ir.NoFlags, ps[0], mask)
	sum := ir.Bin(ir.OpAdd, "s", ir.NoFlags, xor, ashr)
	manual := ir.NewFunc("f", ir.I32, ps,
		[]*ir.Instr{mask, shl, shr, xor, ashr, sum, ir.RetI(sum)})
	diffExec(t, liftOne(t, m, "f"), manual, i32Rows, false)
}

func TestLiftRotatesAndBitcounts(t *testing.T) {
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I64, I64}, Results: []ValType{I64},
		Body: []Instr{
			LocalGet(0), LocalGet(1), Op(OpI64Rotl),
			LocalGet(0), Op(OpI64Clz), Op(OpI64Add),
			LocalGet(0), Op(OpI64Ctz), Op(OpI64Xor),
			LocalGet(1), Op(OpI64Popcnt), Op(OpI64Add),
			LocalGet(0), LocalGet(1), Op(OpI64Rotr), Op(OpI64Sub),
		},
	})
	ps := params(ir.I64, ir.I64)
	rotl := ir.CallI("rl", ir.IntrinsicName("fshl", ir.I64), ir.I64, ps[0], ps[0], ps[1])
	clz := ir.CallI("cl", ir.IntrinsicName("ctlz", ir.I64), ir.I64, ps[0], ir.CBool(false))
	a1 := ir.Bin(ir.OpAdd, "a1", ir.NoFlags, rotl, clz)
	ctz := ir.CallI("ct", ir.IntrinsicName("cttz", ir.I64), ir.I64, ps[0], ir.CBool(false))
	x1 := ir.Bin(ir.OpXor, "x1", ir.NoFlags, a1, ctz)
	pop := ir.CallI("pc", ir.IntrinsicName("ctpop", ir.I64), ir.I64, ps[1])
	a2 := ir.Bin(ir.OpAdd, "a2", ir.NoFlags, x1, pop)
	rotr := ir.CallI("rr", ir.IntrinsicName("fshr", ir.I64), ir.I64, ps[0], ps[0], ps[1])
	s1 := ir.Bin(ir.OpSub, "s1", ir.NoFlags, a2, rotr)
	manual := ir.NewFunc("f", ir.I64, ps,
		[]*ir.Instr{rotl, clz, a1, ctz, x1, pop, a2, rotr, s1, ir.RetI(s1)})
	rows := [][]uint64{
		{0, 0}, {1, 1}, {1, 63}, {1, 64}, {1, 200}, {0x8000000000000000, 1},
		{0xFFFFFFFFFFFFFFFF, 7}, {0x0123456789ABCDEF, 33},
	}
	diffExec(t, liftOne(t, m, "f"), manual, rows, false)
}

func TestLiftComparesAndSelect(t *testing.T) {
	// min(x, y) plus an equality bit, built from icmp/zext/select.
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32, I32}, Results: []ValType{I32},
		Body: []Instr{
			LocalGet(0), LocalGet(1),
			LocalGet(0), LocalGet(1), Op(OpI32LtS),
			Op(OpSelect),
			LocalGet(0), Op(OpI32Eqz),
			Op(OpI32Add),
			LocalGet(0), LocalGet(1), Op(OpI32GeU),
			Op(OpI32Add),
		},
	})
	ps := params(ir.I32, ir.I32)
	lt := ir.ICmpI("lt", ir.SLT, ps[0], ps[1])
	ltw := ir.Conv(ir.OpZExt, "ltw", lt, ir.I32, ir.NoFlags)
	cnz := ir.ICmpI("cnz", ir.NE, ltw, ir.CInt(ir.I32, 0))
	sel := ir.Sel("sel", cnz, ps[0], ps[1])
	ez := ir.ICmpI("ez", ir.EQ, ps[0], ir.CInt(ir.I32, 0))
	ezw := ir.Conv(ir.OpZExt, "ezw", ez, ir.I32, ir.NoFlags)
	a1 := ir.Bin(ir.OpAdd, "a1", ir.NoFlags, sel, ezw)
	ge := ir.ICmpI("ge", ir.UGE, ps[0], ps[1])
	gew := ir.Conv(ir.OpZExt, "gew", ge, ir.I32, ir.NoFlags)
	a2 := ir.Bin(ir.OpAdd, "a2", ir.NoFlags, a1, gew)
	manual := ir.NewFunc("f", ir.I32, ps,
		[]*ir.Instr{lt, ltw, cnz, sel, ez, ezw, a1, ge, gew, a2, ir.RetI(a2)})
	diffExec(t, liftOne(t, m, "f"), manual, i32Rows, false)
}

func TestLiftConversions(t *testing.T) {
	// i64 widening (signed and unsigned), wrapping, and in-place sign
	// extension.
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32, I32}, Results: []ValType{I32},
		Body: []Instr{
			LocalGet(0), Op(OpI64ExtendI32S),
			LocalGet(1), Op(OpI64ExtendI32U),
			Op(OpI64Mul),
			Op(OpI32WrapI64),
			Op(OpI32Extend8S),
		},
	})
	ps := params(ir.I32, ir.I32)
	sx := ir.Conv(ir.OpSExt, "sx", ps[0], ir.I64, ir.NoFlags)
	zx := ir.Conv(ir.OpZExt, "zx", ps[1], ir.I64, ir.NoFlags)
	mul := ir.Bin(ir.OpMul, "m", ir.NoFlags, sx, zx)
	wr := ir.Conv(ir.OpTrunc, "w", mul, ir.I32, ir.NoFlags)
	t8 := ir.Conv(ir.OpTrunc, "t8", wr, ir.I8, ir.NoFlags)
	x8 := ir.Conv(ir.OpSExt, "x8", t8, ir.I32, ir.NoFlags)
	manual := ir.NewFunc("f", ir.I32, ps,
		[]*ir.Instr{sx, zx, mul, wr, t8, x8, ir.RetI(x8)})
	diffExec(t, liftOne(t, m, "f"), manual, i32Rows, false)
}

func TestLiftDivRemUB(t *testing.T) {
	// Division lifts to sdiv/urem; trap inputs (divide by zero) must be UB
	// in both the lifted and the directly-constructed function.
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32, I32}, Results: []ValType{I32},
		Body: []Instr{
			LocalGet(0), LocalGet(1), Op(OpI32DivS),
			LocalGet(0), LocalGet(1), Op(OpI32RemU),
			Op(OpI32Add),
		},
	})
	ps := params(ir.I32, ir.I32)
	div := ir.Bin(ir.OpSDiv, "d", ir.NoFlags, ps[0], ps[1])
	rem := ir.Bin(ir.OpURem, "r", ir.NoFlags, ps[0], ps[1])
	add := ir.Bin(ir.OpAdd, "a", ir.NoFlags, div, rem)
	manual := ir.NewFunc("f", ir.I32, ps, []*ir.Instr{div, rem, add, ir.RetI(add)})
	diffExec(t, liftOne(t, m, "f"), manual, i32Rows, false)
}

func TestLiftIfElsePhi(t *testing.T) {
	// Value-producing if/else plus a local mutated on one arm only: both
	// the result and the local need a phi at the join.
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32}, Results: []ValType{I32},
		Locals: []ValType{I32},
		Body: []Instr{
			I32Const(7), LocalSet(1),
			LocalGet(0), I32Const(10), Op(OpI32LtS),
			If(ValTypeBlock(I32)),
			LocalGet(0), I32Const(2), Op(OpI32Mul),
			I32Const(100), LocalSet(1),
			Else(),
			LocalGet(0), I32Const(1), Op(OpI32Add),
			End(),
			LocalGet(1), Op(OpI32Add),
		},
	})
	// Equivalent straight-line form: both arms are pure, so select works.
	ps := params(ir.I32)
	lt := ir.ICmpI("lt", ir.SLT, ps[0], ir.CInt(ir.I32, 10))
	ltw := ir.Conv(ir.OpZExt, "ltw", lt, ir.I32, ir.NoFlags)
	c := ir.ICmpI("c", ir.NE, ltw, ir.CInt(ir.I32, 0))
	dbl := ir.Bin(ir.OpMul, "d", ir.NoFlags, ps[0], ir.CInt(ir.I32, 2))
	inc := ir.Bin(ir.OpAdd, "i", ir.NoFlags, ps[0], ir.CInt(ir.I32, 1))
	selv := ir.Sel("sv", c, dbl, inc)
	sell := ir.Sel("sl", c, ir.CInt(ir.I32, 100), ir.CInt(ir.I32, 7))
	sum := ir.Bin(ir.OpAdd, "s", ir.NoFlags, selv, sell)
	manual := ir.NewFunc("f", ir.I32, ps,
		[]*ir.Instr{lt, ltw, c, dbl, inc, selv, sell, sum, ir.RetI(sum)})
	rows := [][]uint64{{0}, {5}, {9}, {10}, {11}, {0x7FFFFFFF}, {0x80000000}, {0xFFFFFFFF}}
	diffExec(t, liftOne(t, m, "f"), manual, rows, false)
}

func TestLiftLoop(t *testing.T) {
	// sum(0..n-1) via a block/loop/br_if nest with two mutable locals,
	// against a directly-constructed phi loop.
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32}, Results: []ValType{I32},
		Locals: []ValType{I32, I32}, // 1: i, 2: acc
		Body: []Instr{
			Block(BlockTypeEmpty),
			Loop(BlockTypeEmpty),
			LocalGet(1), LocalGet(0), Op(OpI32GeS), BrIf(1),
			LocalGet(2), LocalGet(1), Op(OpI32Add), LocalSet(2),
			LocalGet(1), I32Const(1), Op(OpI32Add), LocalSet(1),
			Br(0),
			End(),
			End(),
			LocalGet(2),
		},
	})
	ps := params(ir.I32)
	iphi := ir.PhiI("i", ir.I32, nil, nil)
	aphi := ir.PhiI("acc", ir.I32, nil, nil)
	cmp := ir.ICmpI("c", ir.SLT, iphi, ps[0])
	a2 := ir.Bin(ir.OpAdd, "a2", ir.NoFlags, aphi, iphi)
	i2 := ir.Bin(ir.OpAdd, "i2", ir.NoFlags, iphi, ir.CInt(ir.I32, 1))
	iphi.Args = []ir.Value{ir.CInt(ir.I32, 0), i2}
	iphi.Labels = []string{"entry", "body"}
	aphi.Args = []ir.Value{ir.CInt(ir.I32, 0), a2}
	aphi.Labels = []string{"entry", "body"}
	manual := &ir.Func{
		Name: "f", Ret: ir.I32, Params: ps,
		Blocks: []*ir.Block{
			{Name: "entry", Instrs: []*ir.Instr{ir.BrI("head")}},
			{Name: "head", Instrs: []*ir.Instr{iphi, aphi, cmp, ir.CondBrI(cmp, "body", "exit")}},
			{Name: "body", Instrs: []*ir.Instr{a2, i2, ir.BrI("head")}},
			{Name: "exit", Instrs: []*ir.Instr{ir.RetI(aphi)}},
		},
	}
	if err := ir.VerifyFunc(manual); err != nil {
		t.Fatalf("manual loop does not verify: %v", err)
	}
	rows := [][]uint64{{0}, {1}, {2}, {5}, {17}, {100}}
	diffExec(t, liftOne(t, m, "f"), manual, rows, false)
}

func TestLiftMemory(t *testing.T) {
	// Store an i64 at p0+8, load it back, narrow store/load mixing widths.
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32, I64}, Results: []ValType{I64},
		Body: []Instr{
			LocalGet(0), LocalGet(1), Mem(OpI64Store, 3, 8),
			LocalGet(0), LocalGet(1), Op(OpI32WrapI64), Mem(OpI32Store8, 0, 2),
			LocalGet(0), Mem(OpI64Load, 3, 8),
			LocalGet(0), Mem(OpI64Load8U, 0, 2),
			Op(OpI64Add),
		},
	})
	ps := params(ir.I32, ir.I64)
	mp := &ir.Param{Nm: "mem", Ty: ir.Ptr}
	all := append(ps, mp)
	addr := func(pfx string, off int64) (ins []*ir.Instr, p ir.Value) {
		zx := ir.Conv(ir.OpZExt, pfx+"z", ps[0], ir.I64, ir.NoFlags)
		ad := ir.Bin(ir.OpAdd, pfx+"a", ir.NUW, zx, ir.CInt(ir.I64, off))
		g := ir.GEPI(pfx+"g", ir.I8, mp, ad, ir.NoFlags)
		return []*ir.Instr{zx, ad, g}, g
	}
	var ins []*ir.Instr
	a1, p1 := addr("s1", 8)
	ins = append(ins, a1...)
	ins = append(ins, ir.StoreI(ps[1], p1, 1))
	wr := ir.Conv(ir.OpTrunc, "w", ps[1], ir.I32, ir.NoFlags)
	tr := ir.Conv(ir.OpTrunc, "t", wr, ir.I8, ir.NoFlags)
	a2, p2 := addr("s2", 2)
	ins = append(ins, wr)
	ins = append(ins, a2...)
	ins = append(ins, tr, ir.StoreI(tr, p2, 1))
	a3, p3 := addr("l1", 8)
	ld1 := ir.LoadI("ld1", ir.I64, p3, 1)
	ins = append(ins, a3...)
	ins = append(ins, ld1)
	a4, p4 := addr("l2", 2)
	ld2 := ir.LoadI("ld2", ir.I8, p4, 1)
	zx2 := ir.Conv(ir.OpZExt, "zx2", ld2, ir.I64, ir.NoFlags)
	sum := ir.Bin(ir.OpAdd, "s", ir.NoFlags, ld1, zx2)
	ins = append(ins, a4...)
	ins = append(ins, ld2, zx2, sum, ir.RetI(sum))
	manual := ir.NewFunc("f", ir.I64, all, ins)
	rows := [][]uint64{
		{0, 0}, {0, 0x1122334455667788}, {8, 0xFFFFFFFFFFFFFFFF},
		{40, 7}, {100, 1}, // 100+8+8 > 64: OOB, UB in both
	}
	diffExec(t, liftOne(t, m, "f"), manual, rows, true)
}

func TestLiftBrFromLoopBody(t *testing.T) {
	// A br_if that exits across the loop to the enclosing block while a
	// value-producing block result is live.
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32}, Results: []ValType{I32},
		Locals: []ValType{I32},
		Body: []Instr{
			Block(ValTypeBlock(I32)),
			Loop(BlockTypeEmpty),
			LocalGet(1), I32Const(1), Op(OpI32Add), LocalSet(1),
			LocalGet(1), LocalGet(1), Op(OpI32Mul),
			LocalGet(1), LocalGet(0), Op(OpI32GeS),
			BrIf(1), // exits the block carrying i*i
			Op(OpDrop),
			Br(0),
			End(),
			I32Const(-1), // unreachable filler so the block yields a value
			End(),
		},
	})
	// Equivalent: first k in 1.. with k >= n, return k*k.
	ps := params(ir.I32)
	kphi := ir.PhiI("k", ir.I32, nil, nil)
	k2 := ir.Bin(ir.OpAdd, "k2", ir.NoFlags, kphi, ir.CInt(ir.I32, 1))
	sq := ir.Bin(ir.OpMul, "sq", ir.NoFlags, k2, k2)
	ge := ir.ICmpI("ge", ir.SGE, k2, ps[0])
	kphi.Args = []ir.Value{ir.CInt(ir.I32, 0), k2}
	kphi.Labels = []string{"entry", "head"}
	manual := &ir.Func{
		Name: "f", Ret: ir.I32, Params: ps,
		Blocks: []*ir.Block{
			{Name: "entry", Instrs: []*ir.Instr{ir.BrI("head")}},
			{Name: "head", Instrs: []*ir.Instr{kphi, k2, sq, ge, ir.CondBrI(ge, "exit", "head")}},
			{Name: "exit", Instrs: []*ir.Instr{ir.RetI(sq)}},
		},
	}
	if err := ir.VerifyFunc(manual); err != nil {
		t.Fatalf("manual does not verify: %v", err)
	}
	rows := [][]uint64{{0}, {1}, {2}, {5}, {30}}
	diffExec(t, liftOne(t, m, "f"), manual, rows, false)
}

func TestLiftLocalTee(t *testing.T) {
	m := BuildModule(FixtureFunc{
		Name: "f", Params: []ValType{I32}, Results: []ValType{I32},
		Locals: []ValType{I32},
		Body: []Instr{
			LocalGet(0), I32Const(3), Op(OpI32Mul), LocalTee(1),
			LocalGet(1), Op(OpI32Add),
		},
	})
	ps := params(ir.I32)
	mul := ir.Bin(ir.OpMul, "m", ir.NoFlags, ps[0], ir.CInt(ir.I32, 3))
	add := ir.Bin(ir.OpAdd, "a", ir.NoFlags, mul, mul)
	manual := ir.NewFunc("f", ir.I32, ps, []*ir.Instr{mul, add, ir.RetI(add)})
	diffExec(t, liftOne(t, m, "f"), manual, i32Rows[:6], false)
}

func TestLiftSkipReasons(t *testing.T) {
	m := BuildModule(
		FixtureFunc{Name: "ok", Params: []ValType{I32}, Results: []ValType{I32},
			Body: []Instr{LocalGet(0)}},
		FixtureFunc{Name: "callee", Params: []ValType{I32}, Results: []ValType{I32},
			Body: []Instr{LocalGet(0), LocalGet(0), Call(0)}},
		FixtureFunc{Name: "floaty", Params: []ValType{F64}, Results: []ValType{F64},
			Body: []Instr{LocalGet(0)}},
		FixtureFunc{Name: "floatop", Results: []ValType{I32},
			Body: []Instr{Instr{Op: OpF32Const, X: 0}, Op(0xB8 /* f32->i32 path unused; reinterpret-ish */), Op(OpDrop), I32Const(0)}},
		FixtureFunc{Name: "globals", Results: []ValType{I32},
			Body: []Instr{Instr{Op: OpGlobalGet, X: 0}}},
		FixtureFunc{Name: "multi", Params: []ValType{I32}, Results: []ValType{I32, I32},
			Body: []Instr{LocalGet(0), LocalGet(0)}},
		FixtureFunc{Name: "brtable", Params: []ValType{I32}, Results: []ValType{I32},
			Body: []Instr{
				Block(BlockTypeEmpty),
				LocalGet(0), Instr{Op: OpBrTable, Table: []uint32{0, 0}},
				End(), I32Const(1),
			}},
		FixtureFunc{Name: "memsize", Results: []ValType{I32},
			Body: []Instr{Instr{Op: OpMemorySize, X: 0}}},
	)
	dec, err := Decode(MustEncode(m))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	lifted, st := Lift(dec, "skips")
	if st.Funcs != 8 || st.Lifted != 1 || st.Skipped != 7 {
		t.Fatalf("stats = %+v", st)
	}
	want := map[string]int{
		"calls": 1, "float-type": 1, "float-op": 1, "globals": 1,
		"multi-result": 1, "br-table": 1, "memory-size": 1,
	}
	for r, n := range want {
		if st.Reasons[r] != n {
			t.Errorf("reason %q = %d, want %d (all: %v)", r, st.Reasons[r], n, st.Reasons)
		}
	}
	if lifted.FuncByName("ok") == nil {
		t.Error("supported sibling function was not lifted")
	}
	if s := st.String(); s == "" {
		t.Error("empty stats string")
	}
}

func TestLiftedVerifies(t *testing.T) {
	// Every lifted fixture function must pass the IR verifier (Lift already
	// enforces this; the test guards the guarantee).
	dec, err := Decode(MustEncode(testModule()))
	if err != nil {
		t.Fatal(err)
	}
	lifted, st := Lift(dec, "m")
	if st.Reasons["verifier"] != 0 {
		t.Fatalf("verifier skips: %+v", st)
	}
	for _, fn := range lifted.Funcs {
		if err := ir.VerifyFunc(fn); err != nil {
			t.Errorf("%s: %v\n%s", fn.Name, err, fn)
		}
	}
}
