package generalize

import (
	"fmt"
	"sort"

	"repro/internal/alive"
	"repro/internal/interp"
	"repro/internal/ir"
)

// Options bounds a generalization run.
type Options struct {
	// Widths is the verification sweep (default 8, 16, 32, 64). The witness
	// width is always included.
	Widths []int
	// MinWidths is how many widths a candidate must verify at to become a
	// rule (default 2: the witness width alone is not a generalization).
	MinWidths int
	// MaxSlots caps the number of constant occurrences (default 4; beyond
	// that the candidate space stops being a peephole).
	MaxSlots int
	// MaxCombos caps how many slot assignments are verified (default 48).
	MaxCombos int
	// Verify bounds each per-width alive check (default Samples 1024, Seed 1).
	Verify alive.Options
}

func (o Options) withDefaults() Options {
	if len(o.Widths) == 0 {
		o.Widths = []int{8, 16, 32, 64}
	}
	if o.MinWidths == 0 {
		o.MinWidths = 2
	}
	if o.MaxSlots == 0 {
		o.MaxSlots = 4
	}
	if o.MaxCombos == 0 {
		o.MaxCombos = 48
	}
	if o.Verify.Samples == 0 {
		o.Verify.Samples = 1024
	}
	if o.Verify.Seed == 0 {
		o.Verify.Seed = 1
	}
	if o.Verify.Programs == nil {
		// Slot assignments re-instantiate the same functions across the
		// width sweep; a per-run program cache compiles each once. The
		// engine overrides this with its campaign-wide cache.
		o.Verify.Programs = interp.NewCache()
	}
	return o
}

// Rejection records one refuted candidate generalization: the slot
// assignment's side conditions, the width it failed at, and the refutation
// (a counterexample, or an instantiation error for Unsupported verdicts).
type Rejection struct {
	Width int
	Conds []string
	CE    *alive.CounterExample
	Err   string
}

// Result is the outcome of Generalize.
type Result struct {
	// Rule is the surviving generalization, nil when the pair does not
	// generalize (Reason says why).
	Rule   *Rule
	Reason string
	// Rejected lists refuted over-generalizations, capped; it may be
	// non-empty even on success when a broader candidate was tried first.
	Rejected []Rejection
}

const maxRejections = 8

// Generalize lifts a verified concrete rewrite (src, tgt at one width) into
// a width-parameterized rule: it abstracts the constants, enumerates
// candidate abstraction assignments, re-verifies each across the width
// sweep with internal/alive, and returns the first candidate (in a
// deterministic most-widths-first order) whose every valid width verifies.
// Candidates refuted at any width are rejected outright — a counterexample
// at one width means the abstraction, not the witness, is wrong.
func Generalize(src, tgt *ir.Func, opts Options) Result {
	opts = opts.withDefaults()
	ss, err := analyze(src)
	if err != nil {
		return Result{Reason: "source: " + err.Error()}
	}
	ts, err := analyze(tgt)
	if err != nil {
		return Result{Reason: "target: " + err.Error()}
	}
	if ss.width != ts.width {
		return Result{Reason: fmt.Sprintf("width mismatch: source i%d, target i%d", ss.width, ts.width)}
	}
	if len(ss.fn.Params) != len(ts.fn.Params) {
		return Result{Reason: "signature mismatch"}
	}
	for i := range ss.fn.Params {
		if !ir.Equal(ss.fn.Params[i].Ty, ts.fn.Params[i].Ty) {
			return Result{Reason: "signature mismatch"}
		}
	}
	if !ir.Equal(ss.fn.Ret, ts.fn.Ret) {
		return Result{Reason: "signature mismatch"}
	}
	if ss.root == nil {
		return Result{Reason: "source has no root instruction"}
	}
	if ts.ninstr >= ss.ninstr {
		return Result{Reason: "no instruction decrease (rewrites must shrink the window to guarantee fixpoint progress)"}
	}
	// Every parameter the target reads must be bound by matching the source
	// pattern, or the compiled rewriter has nothing to emit for it.
	srcUsed, tgtUsed := usedParams(ss), usedParams(ts)
	for i := range ts.fn.Params {
		if tgtUsed[i] && !srcUsed[i] {
			return Result{Reason: fmt.Sprintf("target reads parameter %%%s the source pattern never matches", ts.fn.Params[i].Nm)}
		}
	}
	occs := append(append([]constOcc(nil), ss.occs...), ts.occs...)
	if len(occs) > opts.MaxSlots {
		return Result{Reason: fmt.Sprintf("too many constant slots (%d > %d)", len(occs), opts.MaxSlots)}
	}

	W := ss.width
	widths := sweepWidths(opts.Widths, W)
	cands := make([][]CExpr, len(occs))
	for i, o := range occs {
		cands[i] = abstractions(o.val, W)
	}

	// Enumerate slot assignments lexicographically (bounded), keep those
	// valid at enough widths, and try them most-general (most valid widths)
	// first; the stable sort keeps the structural-candidate-first slot order
	// as the tiebreak, so the outcome is deterministic.
	type combo struct {
		assign []CExpr
		valid  []int
	}
	var combos []combo
	const maxEnumerated = 512
	assign := make([]CExpr, len(occs))
	var enumerate func(i int)
	enumerate = func(i int) {
		if len(combos) >= maxEnumerated {
			return
		}
		if i == len(occs) {
			valid := validWidths(widths, occs, assign)
			if len(valid) >= opts.MinWidths {
				combos = append(combos, combo{assign: append([]CExpr(nil), assign...), valid: valid})
			}
			return
		}
		for _, c := range cands[i] {
			assign[i] = c
			enumerate(i + 1)
		}
	}
	enumerate(0)
	sort.SliceStable(combos, func(i, j int) bool { return len(combos[i].valid) > len(combos[j].valid) })

	res := Result{}
	reject := func(w int, a []CExpr, ce *alive.CounterExample, msg string) {
		if len(res.Rejected) < maxRejections {
			res.Rejected = append(res.Rejected, Rejection{Width: w, Conds: renderConds(a), CE: ce, Err: msg})
		}
	}
	tried := 0
	for _, c := range combos {
		if tried >= opts.MaxCombos {
			break
		}
		tried++
		wrs := alive.VerifyWidths(c.valid, opts.Verify, func(w int) (*ir.Func, *ir.Func, error) {
			s, err := instantiate(ss, c.assign[:len(ss.occs)], w)
			if err != nil {
				return nil, nil, err
			}
			t, err := instantiate(ts, c.assign[len(ss.occs):], w)
			if err != nil {
				return nil, nil, err
			}
			return s, t, nil
		})
		survived := true
		for _, wr := range wrs {
			if wr.Verdict != alive.Correct {
				reject(wr.Width, c.assign, wr.CE, wr.Err)
				survived = false
				break
			}
		}
		if !survived {
			continue
		}
		rule, err := newRule(ss, ts, c.assign, c.valid)
		if err != nil {
			res.Reason = err.Error()
			return res
		}
		res.Rule = rule
		return res
	}
	res.Reason = "no candidate generalization survived the width sweep"
	if len(combos) == 0 {
		res.Reason = fmt.Sprintf("no slot assignment is valid at %d or more widths", opts.MinWidths)
	}
	return res
}

// sweepWidths returns the sweep plus the witness width, deduplicated and
// ascending.
func sweepWidths(sweep []int, witness int) []int {
	seen := map[int]bool{}
	var out []int
	for _, w := range append(append([]int(nil), sweep...), witness) {
		if w >= 2 && w <= 64 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// validWidths filters the sweep to widths where every slot's expression is
// meaningful (fits, shift amounts stay in range, divisors stay non-zero).
func validWidths(widths []int, occs []constOcc, assign []CExpr) []int {
	var out []int
	for _, w := range widths {
		ok := true
		for i, e := range assign {
			if _, valid := slotValue(e, occs[i], w); !valid {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, w)
		}
	}
	return out
}

func renderConds(assign []CExpr) []string {
	out := make([]string, len(assign))
	for i, e := range assign {
		out[i] = fmt.Sprintf("c%d = %s", i, e.Render())
	}
	return out
}

// usedParams reports, by index, which parameters the shape's body reads.
func usedParams(sh *shape) map[int]bool {
	idx := make(map[*ir.Param]int, len(sh.fn.Params))
	for i, p := range sh.fn.Params {
		idx[p] = i
	}
	out := make(map[int]bool)
	for _, in := range sh.fn.Blocks[0].Instrs {
		for _, a := range in.Args {
			if p, ok := a.(*ir.Param); ok {
				out[idx[p]] = true
			}
		}
	}
	return out
}
