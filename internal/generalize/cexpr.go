// Package generalize closes the discovery→rule loop: it lifts verified
// concrete rewrites (engine findings) into parameterized peephole rules.
//
// A finding is one concrete (source, candidate) pair at one bit width. This
// package abstracts the concrete constants into symbolic expressions of the
// bit width (literals, width-derived shift amounts, low/high masks, the sign
// bit), re-instantiates the pair across a width sweep, re-verifies every
// instantiation with internal/alive, and rejects over-generalizations by
// counterexample. Surviving candidates compile into dynamic opt.Rule
// matcher/rewriter closures (provenance "learned") and serialize into a
// Rulebook, so rules learned in one discovery campaign strengthen the
// optimizer in the next.
package generalize

import (
	"fmt"

	"repro/internal/ir"
)

// CExpr kinds: how one constant slot is derived from the bit width w.
const (
	// KindLit is a non-negative literal, identical at every width it fits.
	KindLit = "lit"
	// KindSLit is a signed literal, sign-extended into each width (covers
	// -1 -> all-ones and negative masks like -16 -> ~15).
	KindSLit = "slit"
	// KindWidthMinus is w - K (shift amounts tied to the width, e.g. w-1).
	KindWidthMinus = "width-minus"
	// KindMaskShr is mask(w) >> K: the low mask keeping w-K bits.
	KindMaskShr = "mask-shr"
	// KindMaskShl is (mask(w) << K) & mask(w): the high mask clearing K bits.
	KindMaskShl = "mask-shl"
	// KindSignBit is 1 << (w-1).
	KindSignBit = "signbit"
	// KindSignMax is mask(w) >> 1: the largest signed value.
	KindSignMax = "signmax"
)

// CExpr is one constant-abstraction expression: a closed form deriving a
// constant slot's bit pattern from the bit width. It is the serializable unit
// of a learned rule's side conditions.
type CExpr struct {
	Kind string `json:"kind"`
	K    int64  `json:"k,omitempty"`
}

// Eval returns the slot's bit pattern at width w, and whether the expression
// is meaningful there (a literal that no longer fits, or a width-derived
// value that goes negative, invalidates the width).
func (e CExpr) Eval(w int) (uint64, bool) {
	switch e.Kind {
	case KindLit:
		v := uint64(e.K)
		return v, e.K >= 0 && v <= ir.MaskW(w)
	case KindSLit:
		return uint64(e.K) & ir.MaskW(w), true
	case KindWidthMinus:
		if e.K < 0 || int(e.K) > w {
			return 0, false
		}
		return uint64(w - int(e.K)), true
	case KindMaskShr:
		if e.K < 0 || int(e.K) >= w {
			return 0, false
		}
		return ir.MaskW(w) >> uint(e.K), true
	case KindMaskShl:
		if e.K < 0 || int(e.K) >= w {
			return 0, false
		}
		return (ir.MaskW(w) << uint(e.K)) & ir.MaskW(w), true
	case KindSignBit:
		return uint64(1) << uint(w-1), true
	case KindSignMax:
		return ir.MaskW(w) >> 1, true
	}
	return 0, false
}

// Parametric reports whether the expression depends on the width (literals
// do not; everything else does).
func (e CExpr) Parametric() bool { return e.Kind != KindLit && e.Kind != KindSLit }

// Render prints the expression as a side condition over the symbolic width w.
func (e CExpr) Render() string {
	switch e.Kind {
	case KindLit, KindSLit:
		return fmt.Sprintf("%d", e.K)
	case KindWidthMinus:
		if e.K == 0 {
			return "w"
		}
		return fmt.Sprintf("w-%d", e.K)
	case KindMaskShr:
		return fmt.Sprintf("mask(w)>>%d", e.K)
	case KindMaskShl:
		return fmt.Sprintf("mask(w)<<%d", e.K)
	case KindSignBit:
		return "1<<(w-1)"
	case KindSignMax:
		return "mask(w)>>1"
	}
	return "?"
}

// abstractions enumerates the candidate expressions for a constant with bit
// pattern v at witness width w, most structural first: mask/sign-bit shapes,
// then the literal reading, then the width relation. Every candidate
// reproduces v at the witness width; the sweep decides which survives.
// Constants with the sign bit set are read as signed literals only (LLVM
// prints them signed), never as wide unsigned literals.
func abstractions(v uint64, w int) []CExpr {
	var out []CExpr
	if w > 1 && v == uint64(1)<<uint(w-1) {
		out = append(out, CExpr{Kind: KindSignBit})
	}
	if w > 1 && v == ir.MaskW(w)>>1 {
		out = append(out, CExpr{Kind: KindSignMax})
	}
	if v != 0 && v != ir.MaskW(w) && v&(v+1) == 0 {
		// v = 2^m - 1: the low mask keeping m bits, i.e. mask(w) >> (w-m).
		m := 0
		for x := v; x != 0; x >>= 1 {
			m++
		}
		out = append(out, CExpr{Kind: KindMaskShr, K: int64(w - m)})
	}
	if k := trailingZeros(v); v != 0 && v != ir.MaskW(w) && k > 0 && v == (ir.MaskW(w)<<uint(k))&ir.MaskW(w) {
		out = append(out, CExpr{Kind: KindMaskShl, K: int64(k)})
	}
	if v <= ir.MaskW(w)>>1 {
		out = append(out, CExpr{Kind: KindLit, K: int64(v)})
	} else {
		out = append(out, CExpr{Kind: KindSLit, K: ir.SignExt(v, w)})
	}
	if v >= 1 && v <= uint64(w) {
		out = append(out, CExpr{Kind: KindWidthMinus, K: int64(w) - int64(v)})
	}
	return out
}

func trailingZeros(v uint64) int {
	if v == 0 {
		return 64
	}
	n := 0
	for v&1 == 0 {
		n++
		v >>= 1
	}
	return n
}
