package generalize

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/opt"
)

// occKey addresses one constant operand position in a witness function.
type occKey struct {
	in  *ir.Instr
	arg int
}

// Rule is one learned, width-generalized rewrite: the verified witness pair,
// the constant abstractions lifted from it, and the widths the abstraction
// re-verified at. The exported fields are the serialization surface
// (Rulebook); the private fields are the compiled matcher state.
type Rule struct {
	// ID is content-derived: a hash of the pair instantiated at the smallest
	// verified width, so the same abstract rule learned from witnesses at
	// different widths deduplicates to one ID.
	ID string
	// Doc is the rendered pattern, e.g. "xor(and(%x, %y), or(%x, %y)) -> xor(%x, %y)".
	Doc string
	// Width is the witness pair's bit width.
	Width int
	// Widths lists every width the generalization was alive-verified at,
	// ascending. The compiled matcher only fires at these widths.
	Widths []int
	// SrcIR and TgtIR are the witness pair's .ll texts at Width.
	SrcIR, TgtIR string
	// Slots assigns one abstraction expression to each primary-width
	// constant occurrence, source occurrences first, then target.
	Slots []CExpr
	// Origin optionally records where the witness was found.
	Origin string

	src, tgt *shape
	slotAt   map[occKey]int // occurrence -> index into Slots, over src and tgt
}

// newRule assembles a Rule from analyzed shapes, the surviving slot
// assignment, and the verified widths (ascending, non-empty).
func newRule(src, tgt *shape, slots []CExpr, widths []int) (*Rule, error) {
	r := &Rule{
		Width: src.width, Widths: widths,
		SrcIR: src.fn.String(), TgtIR: tgt.fn.String(),
		Slots: slots, src: src, tgt: tgt,
	}
	r.slotAt = make(map[occKey]int, len(slots))
	for i, o := range src.occs {
		r.slotAt[occKey{o.in, o.arg}] = i
	}
	for i, o := range tgt.occs {
		r.slotAt[occKey{o.in, o.arg}] = len(src.occs) + i
	}
	w0 := widths[0]
	s0, err := instantiate(src, slots[:len(src.occs)], w0)
	if err != nil {
		return nil, err
	}
	t0, err := instantiate(tgt, slots[len(src.occs):], w0)
	if err != nil {
		return nil, err
	}
	// The content hash covers the pair at the smallest verified width AND
	// the raw slot expressions and width set: a hand-edited rulebook that
	// swaps a width-parametric slot for a literal agreeing only at w0, or
	// inserts an unverified width, must fail the load-time integrity check.
	h := fnv.New64a()
	fmt.Fprintf(h, "%016x|%016x", ir.Hash(s0), bits.RotateLeft64(ir.Hash(t0), 17))
	for _, s := range slots {
		fmt.Fprintf(h, "|%s:%d", s.Kind, s.K)
	}
	for _, w := range widths {
		fmt.Fprintf(h, "|i%d", w)
	}
	r.ID = fmt.Sprintf("learned:%016x", h.Sum64())
	r.Doc = r.renderDoc()
	return r, nil
}

// Conds renders the rule's side conditions: the verified width set plus
// every width-dependent constant derivation.
func (r *Rule) Conds() []string {
	ws := make([]string, len(r.Widths))
	for i, w := range r.Widths {
		ws[i] = fmt.Sprintf("%d", w)
	}
	out := []string{"w in {" + strings.Join(ws, ",") + "}"}
	for i, s := range r.Slots {
		if s.Parametric() {
			out = append(out, fmt.Sprintf("c%d = %s", i, s.Render()))
		}
	}
	return out
}

// RootOp is the opcode the compiled rule dispatches on.
func (r *Rule) RootOp() ir.Opcode { return r.src.root.Op }

// widthOK reports whether the rule was verified at width w.
func (r *Rule) widthOK(w int) bool {
	i := sort.SearchInts(r.Widths, w)
	return i < len(r.Widths) && r.Widths[i] == w
}

// OptRule compiles the learned rule into a registry rule (provenance
// ProvLearned) whose matcher walks the witness source pattern at any
// verified width and whose rewriter emits the re-instantiated target.
func (r *Rule) OptRule() (*opt.Rule, error) {
	return opt.NewDynamicRule(opt.DynamicSpec{
		ID:      r.ID,
		Doc:     r.Doc,
		Example: r.SrcIR,
		Roots:   []ir.Opcode{r.RootOp()},
		Apply: func(fresh func() string, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
			return r.apply(fresh, in)
		},
	})
}

// matchState is one in-flight structural match: the width the pattern is
// being matched at (0 until the first primary-width value fixes it) and the
// pattern-parameter bindings.
type matchState struct {
	r    *Rule
	w    int
	bind map[*ir.Param]ir.Value
}

// ty matches a pattern type against an actual type. Fixed widths (i1 in a
// wider pattern) must agree exactly; the primary width binds the match width
// on first contact and must be one of the rule's verified widths.
func (m *matchState) ty(pat, act ir.Type) bool {
	p, ok := pat.(ir.IntType)
	a, ok2 := act.(ir.IntType)
	if !ok || !ok2 {
		return false
	}
	if p.W != m.r.src.width {
		return a.W == p.W
	}
	if m.w == 0 {
		if !m.r.widthOK(a.W) {
			return false
		}
		m.w = a.W
	}
	return a.W == m.w
}

func sameVal(a, b ir.Value) bool {
	if a == b {
		return true
	}
	ca, ok1 := a.(*ir.ConstInt)
	cb, ok2 := b.(*ir.ConstInt)
	return ok1 && ok2 && ca.Ty == cb.Ty && ca.V == cb.V
}

func (m *matchState) value(pat, act ir.Value, patIn *ir.Instr, argIdx int) bool {
	switch p := pat.(type) {
	case *ir.Param:
		if !m.ty(p.Ty, act.Type()) {
			return false
		}
		if b, bound := m.bind[p]; bound {
			return sameVal(b, act)
		}
		m.bind[p] = act
		return true
	case *ir.ConstInt:
		c, ok := act.(*ir.ConstInt)
		if !ok || !m.ty(p.Ty, c.Ty) {
			return false
		}
		if si, isSlot := m.r.slotAt[occKey{patIn, argIdx}]; isSlot {
			want, valid := slotValue(m.r.Slots[si], occForSlot(m.r, si), m.w)
			return valid && c.V == want&ir.MaskW(m.w)
		}
		return p.Ty == c.Ty && p.V == c.V
	case *ir.Instr:
		a, ok := act.(*ir.Instr)
		return ok && m.instr(p, a)
	}
	return false
}

func occForSlot(r *Rule, si int) constOcc {
	if si < len(r.src.occs) {
		return r.src.occs[si]
	}
	return r.tgt.occs[si-len(r.src.occs)]
}

func (m *matchState) instr(pat, act *ir.Instr) bool {
	if pat.Op != act.Op || pat.IPredV != act.IPredV || pat.FPredV != act.FPredV {
		return false
	}
	// The actual instruction must carry at least the witness's poison
	// guarantees; extra flags only make the source more defined.
	if !act.Flags.Has(pat.Flags) {
		return false
	}
	if !m.ty(pat.Ty, act.Ty) {
		return false
	}
	if pat.Op == ir.OpCall {
		base := ir.IntrinsicBase(pat.Callee)
		if act.Callee != ir.IntrinsicName(base, ir.IntT(m.w)) {
			return false
		}
	}
	if len(pat.Args) != len(act.Args) {
		return false
	}
	for i := range pat.Args {
		if !m.value(pat.Args[i], act.Args[i], pat, i) {
			return false
		}
	}
	return true
}

// apply matches the source pattern rooted at in and, on success, emits the
// target instantiated at the matched width with the matched bindings.
func (r *Rule) apply(fresh func() string, in *ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if r.src.root == nil || in.Op != r.src.root.Op {
		return nil, nil, false
	}
	m := &matchState{r: r, bind: make(map[*ir.Param]ir.Value)}
	if !m.instr(r.src.root, in) || m.w == 0 {
		return nil, nil, false
	}
	// Target parameters mirror source parameters positionally (alive
	// enforces signature equality), so bindings carry over by index.
	vmap := make(map[ir.Value]ir.Value, len(r.tgt.fn.Params)+r.tgt.ninstr)
	for i, p := range r.tgt.fn.Params {
		if b := m.bind[r.src.fn.Params[i]]; b != nil {
			vmap[p] = b
		}
	}
	mapTy := func(t ir.Type) ir.Type {
		if it, ok := t.(ir.IntType); ok && it.W == r.tgt.width {
			return ir.IntT(m.w)
		}
		return t
	}
	emitArg := func(a ir.Value, in *ir.Instr, ai int) (ir.Value, bool) {
		if c, ok := a.(*ir.ConstInt); ok {
			if si, isSlot := r.slotAt[occKey{in, ai}]; isSlot {
				v, valid := slotValue(r.Slots[si], occForSlot(r, si), m.w)
				if !valid {
					return nil, false
				}
				return &ir.ConstInt{Ty: ir.IntT(m.w), V: v & ir.MaskW(m.w)}, true
			}
			return c, true
		}
		v, ok := vmap[a]
		return v, ok && v != nil
	}
	var news []*ir.Instr
	tb := r.tgt.fn.Blocks[0]
	for _, ti := range tb.Instrs[:r.tgt.ninstr] {
		ni := &ir.Instr{
			Op: ti.Op, Nm: fresh(), Ty: mapTy(ti.Ty), IPredV: ti.IPredV,
			FPredV: ti.FPredV, Flags: ti.Flags, Align: ti.Align,
		}
		if ti.Op == ir.OpCall {
			ni.Callee = ir.IntrinsicName(ir.IntrinsicBase(ti.Callee), ni.Ty)
		}
		for ai, a := range ti.Args {
			v, ok := emitArg(a, ti, ai)
			if !ok {
				return nil, nil, false
			}
			ni.Args = append(ni.Args, v)
		}
		vmap[ti] = ni
		news = append(news, ni)
	}
	repl, ok := emitArg(r.tgt.ret, tb.Instrs[r.tgt.ninstr], 0)
	if !ok {
		return nil, nil, false
	}
	return news, repl, true
}

// renderDoc prints the rule as "src-expr -> tgt-expr" with slot expressions
// inlined, the registry's one-line pattern convention.
func (r *Rule) renderDoc() string {
	return r.renderShape(r.src, 0) + " -> " + r.renderShape(r.tgt, len(r.src.occs))
}

func (r *Rule) renderShape(sh *shape, base int) string {
	slotAt := make(map[occKey]int, len(sh.occs))
	for i, o := range sh.occs {
		slotAt[occKey{o.in, o.arg}] = base + i
	}
	var render func(v ir.Value, in *ir.Instr, ai int) string
	render = func(v ir.Value, in *ir.Instr, ai int) string {
		switch x := v.(type) {
		case *ir.Param:
			return "%" + x.Nm
		case *ir.ConstInt:
			if si, ok := slotAt[occKey{in, ai}]; ok {
				return r.Slots[si].Render()
			}
			return x.Ident()
		case *ir.Instr:
			name := x.Op.Name()
			switch x.Op {
			case ir.OpICmp:
				name += " " + x.IPredV.Name()
			case ir.OpFCmp:
				name += " " + x.FPredV.Name()
			case ir.OpCall:
				name = ir.IntrinsicBase(x.Callee)
			}
			parts := make([]string, len(x.Args))
			for i, a := range x.Args {
				parts[i] = render(a, x, i)
			}
			return name + "(" + strings.Join(parts, ", ") + ")"
		}
		return v.Ident()
	}
	ret := sh.fn.Blocks[0].Instrs[sh.ninstr]
	return render(sh.ret, ret, 0)
}

// OptRules compiles a batch of learned rules into registry rules, preserving
// order and skipping nothing: any rule that fails to compile aborts the
// batch (a rulebook with one bad entry should not half-load).
func OptRules(rules []*Rule) ([]*opt.Rule, error) {
	out := make([]*opt.Rule, 0, len(rules))
	for _, r := range rules {
		or, err := r.OptRule()
		if err != nil {
			return nil, fmt.Errorf("rule %s: %w", r.ID, err)
		}
		out = append(out, or)
	}
	return out, nil
}
