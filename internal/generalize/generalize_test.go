package generalize

import (
	"strings"
	"testing"

	"repro/internal/alive"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/parser"
)

func mustGeneralize(t *testing.T, src, tgt string) *Rule {
	t.Helper()
	res := Generalize(parser.MustParseFunc(src), parser.MustParseFunc(tgt), Options{})
	if res.Rule == nil {
		t.Fatalf("expected a learned rule, got rejection: %s (rejected %d candidates)",
			res.Reason, len(res.Rejected))
	}
	return res.Rule
}

// A structural rewrite with no constants must generalize to every sweep
// width and rewrite windows at widths the witness never saw.
func TestGeneralizeStructural(t *testing.T) {
	rule := mustGeneralize(t, `define i16 @src(i16 %x, i16 %y) {
  %a = and i16 %x, %y
  %o = or i16 %x, %y
  %r = xor i16 %a, %o
  ret i16 %r
}`, `define i16 @tgt(i16 %x, i16 %y) {
  %r = xor i16 %x, %y
  ret i16 %r
}`)
	if len(rule.Widths) != 4 {
		t.Fatalf("expected 4 verified widths, got %v", rule.Widths)
	}
	if rule.Width != 16 {
		t.Fatalf("witness width = %d, want 16", rule.Width)
	}
	or, err := rule.OptRule()
	if err != nil {
		t.Fatal(err)
	}
	if or.Provenance != opt.ProvLearned {
		t.Fatalf("provenance = %s, want learned", or.Provenance)
	}
	// The learned rule must close the same window at a width the witness
	// never saw (i64), under a baseline-only selection.
	rs := opt.NewRuleSet(opt.Options{}).WithRules(or)
	win := parser.MustParseFunc(`define i64 @f(i64 %p, i64 %q) {
  %a = and i64 %p, %q
  %o = or i64 %p, %q
  %r = xor i64 %a, %o
  ret i64 %r
}`)
	got, stats := opt.RunWithStats(win, opt.Options{Rules: rs})
	if stats.RuleHits[rule.ID] == 0 {
		t.Fatalf("learned rule did not fire at i64: hits %v\n%s", stats.RuleHits, got)
	}
	if got.NumInstrs(true) != 1 {
		t.Fatalf("window not closed:\n%s", got)
	}
	v := alive.Verify(win, got, alive.Options{Samples: 512, Seed: 3})
	if v.Verdict != alive.Correct {
		t.Fatalf("learned rewrite is not a refinement at i64")
	}
	// Baseline alone must miss the window (it is a genuine learned gain).
	if base := opt.RunO3(win); base.NumInstrs(true) != 3 {
		t.Fatalf("baseline unexpectedly closes the window:\n%s", base)
	}
}

// Width-derived constants: lshr (shl X, C), C -> and X, mask(w)>>C must
// learn the mask as a function of the width, not the literal 31.
func TestGeneralizeWidthDerivedMask(t *testing.T) {
	rule := mustGeneralize(t, `define i8 @src(i8 %x) {
  %a = shl i8 %x, 3
  %b = lshr i8 %a, 3
  ret i8 %b
}`, `define i8 @tgt(i8 %x) {
  %r = and i8 %x, 31
  ret i8 %r
}`)
	if len(rule.Widths) < 2 {
		t.Fatalf("verified widths %v, want at least 2", rule.Widths)
	}
	or, err := rule.OptRule()
	if err != nil {
		t.Fatal(err)
	}
	rs := opt.NewRuleSet(opt.Options{}).WithRules(or)
	// At i32 the mask must become mask(32)>>3 = 0x1FFFFFFF, not 31.
	win := parser.MustParseFunc(`define i32 @f(i32 %x) {
  %a = shl i32 %x, 3
  %b = lshr i32 %a, 3
  ret i32 %b
}`)
	got := opt.Run(win, opt.Options{Rules: rs})
	if got.NumInstrs(true) != 1 {
		t.Fatalf("window not closed:\n%s", got)
	}
	in := got.Instrs()[0]
	if in.Op != ir.OpAnd {
		t.Fatalf("expected an and, got %s", in.Op.Name())
	}
	c, ok := ir.IntConstValue(in.Args[1])
	if !ok || c != ir.MaskW(32)>>3 {
		t.Fatalf("mask = %#x, want %#x", c, ir.MaskW(32)>>3)
	}
	v := alive.Verify(win, got, alive.Options{Samples: 512, Seed: 3})
	if v.Verdict != alive.Correct {
		t.Fatal("learned rewrite is not a refinement at i32")
	}
}

// The over-generalization fixture: (x<<7)+x == mul i8 %x, -127 holds only
// at i8 (129 = 2^7+1 is width-tied, and the sign-bit-set constant reads as
// a signed literal). Every candidate abstraction must be refuted with a
// counterexample and no rule learned.
func TestOverGeneralizationRejected(t *testing.T) {
	src := parser.MustParseFunc(`define i8 @src(i8 %x) {
  %a = shl i8 %x, 7
  %r = add i8 %a, %x
  ret i8 %r
}`)
	tgt := parser.MustParseFunc(`define i8 @tgt(i8 %x) {
  %r = mul i8 %x, -127
  ret i8 %r
}`)
	// The concrete witness itself is sound at i8.
	if v := alive.Verify(src, tgt, alive.Options{}); v.Verdict != alive.Correct {
		t.Fatalf("fixture witness is not a refinement at i8")
	}
	res := Generalize(src, tgt, Options{})
	if res.Rule != nil {
		t.Fatalf("over-generalization was learned: %s (widths %v)", res.Rule.Doc, res.Rule.Widths)
	}
	if len(res.Rejected) == 0 {
		t.Fatal("expected rejected candidates with counterexamples")
	}
	sawCE := false
	for _, rej := range res.Rejected {
		if rej.CE != nil {
			sawCE = true
			if rej.Width == 8 {
				t.Fatalf("counterexample at the witness width itself: %+v", rej)
			}
			if !strings.Contains(rej.CE.Format(), "Transformation doesn't verify!") {
				t.Fatalf("counterexample does not render: %q", rej.CE.Format())
			}
		}
	}
	if !sawCE {
		t.Fatalf("no rejection carries a counterexample: %+v", res.Rejected)
	}
}

// Non-generalizable shapes must be declined with a reason, not learned.
func TestGeneralizeRejectsUnsupportedShapes(t *testing.T) {
	cases := []struct{ name, src, tgt string }{
		{"memory", `define void @src(ptr %p) {
  %v = load i32, ptr %p, align 4
  store i32 %v, ptr %p, align 4
  ret void
}`, `define void @tgt(ptr %p) {
  ret void
}`},
		{"mixed-width", `define i32 @src(i8 %x) {
  %z = zext i8 %x to i32
  %r = call i32 @llvm.umin.i32(i32 %z, i32 255)
  ret i32 %r
}`, `define i32 @tgt(i8 %x) {
  %z = zext i8 %x to i32
  ret i32 %z
}`},
		{"vector", `define <4 x i8> @src(<4 x i8> %x, <4 x i8> %y) {
  %a = and <4 x i8> %x, %y
  %o = or <4 x i8> %x, %y
  %r = xor <4 x i8> %a, %o
  ret <4 x i8> %r
}`, `define <4 x i8> @tgt(<4 x i8> %x, <4 x i8> %y) {
  %r = xor <4 x i8> %x, %y
  ret <4 x i8> %r
}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Generalize(parser.MustParseFunc(tc.src), parser.MustParseFunc(tc.tgt), Options{})
			if res.Rule != nil {
				t.Fatalf("learned a rule from an unsupported shape: %s", res.Rule.Doc)
			}
			if res.Reason == "" {
				t.Fatal("rejection carries no reason")
			}
		})
	}
}

// Learned rules must survive the JSON round trip bit-for-bit and compile to
// an identical selection.
func TestRulebookRoundTrip(t *testing.T) {
	r1 := mustGeneralize(t, `define i16 @src(i16 %x, i16 %y) {
  %a = and i16 %x, %y
  %o = or i16 %x, %y
  %r = xor i16 %a, %o
  ret i16 %r
}`, `define i16 @tgt(i16 %x, i16 %y) {
  %r = xor i16 %x, %y
  ret i16 %r
}`)
	r2 := mustGeneralize(t, `define i8 @src(i8 %x) {
  %a = shl i8 %x, 3
  %b = lshr i8 %a, 3
  ret i8 %b
}`, `define i8 @tgt(i8 %x) {
  %r = and i8 %x, 31
  ret i8 %r
}`)
	book := NewRulebook([]*Rule{r1, r2})
	data, err := book.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRulebook(data)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := back.Compile()
	if err != nil {
		t.Fatal(err)
	}
	data2, err := NewRulebook(rules).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("rulebook does not round-trip:\n%s\nvs\n%s", data, data2)
	}
	if err := back.Verify(alive.Options{Samples: 256, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	// The compiled selections must be identical: same rule IDs in the same
	// dispatch order, and identical behaviour on the witness windows.
	ors1, err := OptRules([]*Rule{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	ors2, err := OptRules(rules)
	if err != nil {
		t.Fatal(err)
	}
	rs1 := opt.NewRuleSet(opt.Options{}).WithRules(ors1...)
	rs2 := opt.NewRuleSet(opt.Options{}).WithRules(ors2...)
	ids := func(rs *opt.RuleSet) []string {
		var out []string
		for _, r := range rs.Rules() {
			out = append(out, r.ID)
		}
		return out
	}
	a, b := ids(rs1), ids(rs2)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("selections differ:\n%v\nvs\n%v", a, b)
	}
	for _, r := range []*Rule{r1, r2} {
		win := parser.MustParseFunc(r.SrcIR)
		g1 := opt.Run(win, opt.Options{Rules: rs1})
		g2 := opt.Run(win, opt.Options{Rules: rs2})
		if !ir.StructurallyEqual(g1, g2) {
			t.Fatalf("round-tripped selection optimizes differently:\n%s\nvs\n%s", g1, g2)
		}
	}
	// Tampering must be caught by the content-hash check: a rewritten
	// witness, a width-parametric slot swapped for a literal that agrees
	// only at the witness width, and an unverified width spliced into the
	// sorted width list are all miscompile vectors if they load.
	// Locate the shl/lshr entry (the one with a width-derived mask slot).
	entryIdx, maskIdx := -1, -1
	for ei, e := range back.Rules {
		for si, s := range e.Slots {
			if s.Kind == KindMaskShr {
				entryIdx, maskIdx = ei, si
			}
		}
	}
	if entryIdx < 0 {
		t.Fatal("expected an entry with a mask-shr slot")
	}
	tamper := func(name string, mutate func(*Entry)) {
		t.Helper()
		tampered := *back
		tampered.Rules = append([]Entry(nil), back.Rules...)
		mutate(&tampered.Rules[entryIdx])
		if _, err := tampered.Compile(); err == nil {
			t.Fatalf("%s-tampered rulebook compiled cleanly", name)
		}
	}
	tamper("witness", func(e *Entry) { e.Src = strings.Replace(e.Src, "lshr", "ashr", 1) })
	tamper("slot", func(e *Entry) {
		e.Slots = append([]CExpr(nil), e.Slots...)
		e.Slots[maskIdx] = CExpr{Kind: KindLit, K: 31} // agrees at i8 only
	})
	tamper("width", func(e *Entry) {
		e.Widths = []int{8, 16, 32, 37, 64} // 37 was never verified
	})
}

// Rewidth backs cmd/lpo-verify -widths: literal policy, with clean errors
// for constants that do not survive the move.
func TestRewidth(t *testing.T) {
	f := parser.MustParseFunc(`define i8 @f(i8 %x) {
  %a = and i8 %x, -16
  %r = xor i8 %a, 5
  ret i8 %r
}`)
	g, err := Rewidth(f, 32)
	if err != nil {
		t.Fatal(err)
	}
	in := g.Instrs()[0]
	if c, _ := ir.IntConstValue(in.Args[1]); ir.SignExt(c, 32) != -16 {
		t.Fatalf("signed literal did not sign-extend: %#x", c)
	}
	shift := parser.MustParseFunc(`define i16 @f(i16 %x) {
  %r = lshr i16 %x, 12
  ret i16 %r
}`)
	if _, err := Rewidth(shift, 8); err == nil {
		t.Fatal("shift amount 12 must not survive the move to i8")
	}
	if _, err := Rewidth(shift, 64); err != nil {
		t.Fatalf("widening a shift must work: %v", err)
	}
}

// An intrinsic window (rotate -> fshl) must generalize with the overload
// following the width.
func TestGeneralizeIntrinsicOverload(t *testing.T) {
	rule := mustGeneralize(t, `define i16 @src(i16 %x) {
  %a = shl i16 %x, 4
  %b = lshr i16 %x, 12
  %r = or i16 %a, %b
  ret i16 %r
}`, `define i16 @tgt(i16 %x) {
  %r = tail call i16 @llvm.fshl.i16(i16 %x, i16 %x, i16 4)
  ret i16 %r
}`)
	or, err := rule.OptRule()
	if err != nil {
		t.Fatal(err)
	}
	rs := opt.NewRuleSet(opt.Options{}).WithRules(or)
	win := parser.MustParseFunc(`define i32 @f(i32 %x) {
  %a = shl i32 %x, 4
  %b = lshr i32 %x, 28
  %r = or i32 %a, %b
  ret i32 %r
}`)
	got := opt.Run(win, opt.Options{Rules: rs})
	if got.NumInstrs(true) != 1 {
		t.Fatalf("rotate window not closed at i32:\n%s", got)
	}
	call := got.Instrs()[0]
	if call.Op != ir.OpCall || call.Callee != "llvm.fshl.i32" {
		t.Fatalf("expected llvm.fshl.i32, got %s %s", call.Op.Name(), call.Callee)
	}
	if v := alive.Verify(win, got, alive.Options{Samples: 512, Seed: 3}); v.Verdict != alive.Correct {
		t.Fatal("learned rotate rewrite is not a refinement at i32")
	}
}
