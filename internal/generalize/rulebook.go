package generalize

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/alive"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/parser"
)

// RulebookVersion is the serialization format version.
const RulebookVersion = 1

// Entry is one learned rule in serialized form: the witness pair, the slot
// abstractions, the verified widths, and rendered side conditions for human
// readers. Slots pair with the constant occurrences of the witness pair in
// traversal order (source first), which is how Compile reconstructs the
// matcher without re-running the search.
type Entry struct {
	ID     string   `json:"id"`
	Doc    string   `json:"doc"`
	Width  int      `json:"witness_width"`
	Widths []int    `json:"verified_widths"`
	Src    string   `json:"src"`
	Tgt    string   `json:"tgt"`
	Slots  []CExpr  `json:"slots"`
	Conds  []string `json:"side_conditions,omitempty"`
	Origin string   `json:"origin,omitempty"`
}

// Rulebook is the serializable set of learned rules a discovery campaign
// produces (cmd/lpo -learn) and later runs consume (cmd/lpo -rulebook,
// cmd/lpo-opt -rulebook).
type Rulebook struct {
	Version int     `json:"version"`
	Rules   []Entry `json:"rules"`
}

// NewRulebook serializes learned rules into a book, sorted by rule ID so the
// encoding is deterministic.
func NewRulebook(rules []*Rule) *Rulebook {
	b := &Rulebook{Version: RulebookVersion}
	for _, r := range rules {
		b.Rules = append(b.Rules, Entry{
			ID: r.ID, Doc: r.Doc, Width: r.Width, Widths: r.Widths,
			Src: r.SrcIR, Tgt: r.TgtIR, Slots: r.Slots, Conds: r.Conds(),
			Origin: r.Origin,
		})
	}
	sort.Slice(b.Rules, func(i, j int) bool { return b.Rules[i].ID < b.Rules[j].ID })
	return b
}

// Encode renders the book as indented JSON with a trailing newline.
func (b *Rulebook) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeRulebook parses a serialized rulebook.
func DecodeRulebook(data []byte) (*Rulebook, error) {
	var b Rulebook
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("rulebook: %w", err)
	}
	if b.Version != RulebookVersion {
		return nil, fmt.Errorf("rulebook: unsupported version %d", b.Version)
	}
	return &b, nil
}

// LoadRulebook reads and decodes a rulebook file.
func LoadRulebook(path string) (*Rulebook, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeRulebook(data)
}

// LoadOptRules is the one-call load path the CLIs use: read a rulebook
// file, compile its entries (with the integrity checks), and wrap them as
// registry rules ready for RuleSet.WithRules.
func LoadOptRules(path string) ([]*opt.Rule, error) {
	book, err := LoadRulebook(path)
	if err != nil {
		return nil, err
	}
	rules, err := book.Compile()
	if err != nil {
		return nil, err
	}
	return OptRules(rules)
}

// Compile reconstructs every entry's Rule: the witness pair is re-parsed and
// re-analyzed, the stored slots are checked against the witness constants,
// and the content-derived ID is recomputed and must match — a cheap
// integrity check that catches hand-edited or corrupted books without
// re-running verification. Use Verify for the full re-check.
func (b *Rulebook) Compile() ([]*Rule, error) {
	out := make([]*Rule, 0, len(b.Rules))
	for i := range b.Rules {
		r, err := b.Rules[i].Compile()
		if err != nil {
			return nil, fmt.Errorf("rulebook entry %d (%s): %w", i, b.Rules[i].ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Compile reconstructs one entry's Rule.
func (e *Entry) Compile() (*Rule, error) {
	src, err := parser.ParseFunc(e.Src)
	if err != nil {
		return nil, fmt.Errorf("source: %w", err)
	}
	tgt, err := parser.ParseFunc(e.Tgt)
	if err != nil {
		return nil, fmt.Errorf("target: %w", err)
	}
	ss, err := analyze(src)
	if err != nil {
		return nil, fmt.Errorf("source: %w", err)
	}
	ts, err := analyze(tgt)
	if err != nil {
		return nil, fmt.Errorf("target: %w", err)
	}
	if ss.width != e.Width || ts.width != e.Width {
		return nil, fmt.Errorf("witness width %d does not match the pair", e.Width)
	}
	occs := append(append([]constOcc(nil), ss.occs...), ts.occs...)
	if len(e.Slots) != len(occs) {
		return nil, fmt.Errorf("%d slots for %d constant occurrences", len(e.Slots), len(occs))
	}
	for i, s := range e.Slots {
		v, ok := slotValue(s, occs[i], e.Width)
		if !ok || v != occs[i].val {
			return nil, fmt.Errorf("slot %d (%s) does not reproduce the witness constant", i, s.Render())
		}
	}
	if len(e.Widths) == 0 || !sort.IntsAreSorted(e.Widths) {
		return nil, fmt.Errorf("verified widths must be non-empty and ascending")
	}
	r, err := newRule(ss, ts, e.Slots, e.Widths)
	if err != nil {
		return nil, err
	}
	if r.ID != e.ID {
		return nil, fmt.Errorf("content hash mismatch: stored %s, recomputed %s", e.ID, r.ID)
	}
	r.Origin = e.Origin
	return r, nil
}

// Verify re-checks every entry's refinement obligation across its recorded
// widths with internal/alive; it is the load-time belt-and-braces check for
// books from untrusted sources.
func (b *Rulebook) Verify(opts alive.Options) error {
	rules, err := b.Compile()
	if err != nil {
		return err
	}
	if opts.Programs == nil {
		opts.Programs = interp.NewCache()
	}
	for _, r := range rules {
		wrs := alive.VerifyWidths(r.Widths, opts, func(w int) (*ir.Func, *ir.Func, error) {
			s, err := instantiate(r.src, r.Slots[:len(r.src.occs)], w)
			if err != nil {
				return nil, nil, err
			}
			t, err := instantiate(r.tgt, r.Slots[len(r.src.occs):], w)
			if err != nil {
				return nil, nil, err
			}
			return s, t, nil
		})
		for _, wr := range wrs {
			if wr.Verdict != alive.Correct {
				return fmt.Errorf("rule %s does not verify at width i%d", r.ID, wr.Width)
			}
		}
	}
	return nil
}
