package generalize

import (
	"fmt"

	"repro/internal/ir"
)

// constOcc is one occurrence of a primary-width integer constant in a
// witness function, in block traversal order. Occurrence order is the
// serialization contract: rulebook slots pair with occurrences positionally.
type constOcc struct {
	in    *ir.Instr
	arg   int
	val   uint64
	shift bool // shift-amount operand: the instantiated value must stay < w
	div   bool // divisor operand: the instantiated value must stay non-zero
}

// shape is the analyzed form of a witness function that the generalizer can
// re-instantiate at other widths: a single straight-line block of pure
// scalar-integer instructions over exactly one primary width (plus i1), with
// every instruction feeding the returned value.
type shape struct {
	fn     *ir.Func
	width  int       // the unique integer width > 1
	root   *ir.Instr // defining instruction of the returned value (nil when the body is empty)
	ret    ir.Value
	occs   []constOcc
	ninstr int // instructions excluding the terminator
}

// analyze validates that f is generalizable and extracts its shape. The
// restrictions are deliberate: width-parametric re-instantiation is only
// meaningful for single-width scalar integer windows, which is also where
// the interesting peephole families live (vector and memory windows keep
// their concrete form and are simply not learned).
func analyze(f *ir.Func) (*shape, error) {
	if len(f.Blocks) != 1 {
		return nil, fmt.Errorf("multi-block function")
	}
	b := f.Blocks[0]
	if len(b.Instrs) == 0 {
		return nil, fmt.Errorf("empty function body")
	}
	term := b.Instrs[len(b.Instrs)-1]
	if term.Op != ir.OpRet || len(term.Args) != 1 {
		return nil, fmt.Errorf("need a single-value return")
	}
	sh := &shape{fn: f, ret: term.Args[0], ninstr: len(b.Instrs) - 1}

	noteTy := func(t ir.Type) error {
		it, ok := t.(ir.IntType)
		if !ok {
			return fmt.Errorf("non-scalar-integer type %s", t)
		}
		if it.W == 1 {
			return nil
		}
		if sh.width == 0 {
			sh.width = it.W
		} else if sh.width != it.W {
			return fmt.Errorf("mixed integer widths i%d and i%d", sh.width, it.W)
		}
		return nil
	}
	for _, p := range f.Params {
		if err := noteTy(p.Ty); err != nil {
			return nil, err
		}
	}
	if err := noteTy(f.Ret); err != nil {
		return nil, err
	}
	for _, in := range b.Instrs[:sh.ninstr] {
		switch {
		case in.Op.IsIntBinary():
		case in.Op == ir.OpICmp, in.Op == ir.OpSelect, in.Op == ir.OpFreeze:
		case in.Op == ir.OpCall:
			if ir.IntrinsicBase(in.Callee) == "" {
				return nil, fmt.Errorf("non-intrinsic call %s", in.Callee)
			}
		default:
			return nil, fmt.Errorf("unsupported opcode %s", in.Op.Name())
		}
		if err := noteTy(in.Ty); err != nil {
			return nil, err
		}
	}
	for _, in := range b.Instrs {
		for _, a := range in.Args {
			switch c := a.(type) {
			case *ir.ConstInt:
				if err := noteTy(c.Ty); err != nil {
					return nil, err
				}
			case *ir.Param, *ir.Instr:
			default:
				return nil, fmt.Errorf("unsupported constant operand %s", a.Ident())
			}
		}
	}
	if sh.width == 0 {
		return nil, fmt.Errorf("no primary integer width (i1-only window)")
	}
	// Intrinsic overloads must ride the primary width, so re-instantiation
	// can rebuild the callee name from the new width.
	for _, in := range b.Instrs[:sh.ninstr] {
		if in.Op != ir.OpCall {
			continue
		}
		it, ok := in.Ty.(ir.IntType)
		if !ok || it.W != sh.width {
			return nil, fmt.Errorf("intrinsic %s does not return the primary width", in.Callee)
		}
		if want := ir.IntrinsicName(ir.IntrinsicBase(in.Callee), in.Ty); in.Callee != want {
			return nil, fmt.Errorf("intrinsic overload %s is not at the primary width", in.Callee)
		}
	}
	// Root and reachability: every instruction must feed the returned value,
	// so a structural match rooted at the final instruction covers the whole
	// window.
	if root, ok := sh.ret.(*ir.Instr); ok {
		sh.root = root
		live := map[*ir.Instr]bool{}
		var mark func(v ir.Value)
		mark = func(v ir.Value) {
			in, ok := v.(*ir.Instr)
			if !ok || live[in] {
				return
			}
			live[in] = true
			for _, a := range in.Args {
				mark(a)
			}
		}
		mark(root)
		for _, in := range b.Instrs[:sh.ninstr] {
			if !live[in] {
				return nil, fmt.Errorf("instruction %%%s does not feed the returned value", in.Nm)
			}
		}
	} else if sh.ninstr > 0 {
		return nil, fmt.Errorf("returned value bypasses the instruction body")
	}
	// Constant occurrences, in traversal order (the slot order contract).
	for _, in := range b.Instrs {
		for ai, a := range in.Args {
			c, ok := a.(*ir.ConstInt)
			if !ok || c.Ty.W != sh.width {
				continue
			}
			sh.occs = append(sh.occs, constOcc{
				in: in, arg: ai, val: c.V,
				shift: isShiftAmount(in, ai),
				div:   isDivisor(in, ai),
			})
		}
	}
	return sh, nil
}

func isShiftAmount(in *ir.Instr, arg int) bool {
	switch in.Op {
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		return arg == 1
	}
	return false
}

func isDivisor(in *ir.Instr, arg int) bool {
	switch in.Op {
	case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
		return arg == 1
	}
	return false
}

// slotValue evaluates one slot at width w and applies the occurrence's
// structural validity conditions.
func slotValue(e CExpr, occ constOcc, w int) (uint64, bool) {
	v, ok := e.Eval(w)
	if !ok {
		return 0, false
	}
	if occ.shift && v >= uint64(w) {
		return 0, false
	}
	if occ.div && v == 0 {
		return 0, false
	}
	return v, true
}

// instantiate rebuilds the shaped function at width w: primary-width types
// are re-widthed, intrinsic overloads follow, and each constant occurrence
// takes the value of its assigned expression. assign runs parallel to
// sh.occs.
func instantiate(sh *shape, assign []CExpr, w int) (*ir.Func, error) {
	if w < 2 || w > 64 {
		return nil, fmt.Errorf("width i%d out of range", w)
	}
	if len(assign) != len(sh.occs) {
		return nil, fmt.Errorf("slot count mismatch: %d assignments for %d occurrences", len(assign), len(sh.occs))
	}
	mapTy := func(t ir.Type) ir.Type {
		if it, ok := t.(ir.IntType); ok && it.W == sh.width {
			return ir.IntT(w)
		}
		return t
	}
	slotAt := make(map[occKey]int, len(sh.occs))
	for i, o := range sh.occs {
		slotAt[occKey{o.in, o.arg}] = i
	}
	nf := &ir.Func{Name: sh.fn.Name, Ret: mapTy(sh.fn.Ret)}
	vmap := make(map[ir.Value]ir.Value)
	for _, p := range sh.fn.Params {
		np := &ir.Param{Nm: p.Nm, Ty: mapTy(p.Ty)}
		vmap[p] = np
		nf.Params = append(nf.Params, np)
	}
	nb := &ir.Block{Name: sh.fn.Blocks[0].Name}
	for _, in := range sh.fn.Blocks[0].Instrs {
		ni := &ir.Instr{
			Op: in.Op, Nm: in.Nm, Ty: mapTy(in.Ty), IPredV: in.IPredV,
			FPredV: in.FPredV, Flags: in.Flags, Align: in.Align,
		}
		if in.Op == ir.OpCall {
			ni.Callee = ir.IntrinsicName(ir.IntrinsicBase(in.Callee), ni.Ty)
		}
		for ai, a := range in.Args {
			if si, ok := slotAt[occKey{in, ai}]; ok {
				v, valid := slotValue(assign[si], sh.occs[si], w)
				if !valid {
					return nil, fmt.Errorf("slot %d (%s) is invalid at width i%d", si, assign[si].Render(), w)
				}
				ni.Args = append(ni.Args, &ir.ConstInt{Ty: ir.IntT(w), V: v & ir.MaskW(w)})
				continue
			}
			if m, ok := vmap[a]; ok {
				ni.Args = append(ni.Args, m)
			} else {
				ni.Args = append(ni.Args, a) // shared non-slot constant (i1)
			}
		}
		vmap[in] = ni
		nb.Instrs = append(nb.Instrs, ni)
	}
	nf.Blocks = []*ir.Block{nb}
	return nf, nil
}

// literalAssign abstracts every occurrence as its literal reading: the naive
// policy Rewidth uses (non-negative constants stay, sign-bit-set constants
// sign-extend).
func literalAssign(sh *shape) []CExpr {
	out := make([]CExpr, len(sh.occs))
	for i, o := range sh.occs {
		if o.val <= ir.MaskW(sh.width)>>1 {
			out[i] = CExpr{Kind: KindLit, K: int64(o.val)}
		} else {
			out[i] = CExpr{Kind: KindSLit, K: ir.SignExt(o.val, sh.width)}
		}
	}
	return out
}

// Rewidth re-instantiates a generalizable single-width function at another
// bit width under the literal constant policy (signed literals sign-extend,
// non-negative literals keep their value). It errors when the function is
// not generalizable or a constant does not survive the move (e.g. a shift
// amount at least as large as the new width). cmd/lpo-verify -widths uses it
// to re-check concrete rewrites at alternate widths.
func Rewidth(f *ir.Func, w int) (*ir.Func, error) {
	sh, err := analyze(f)
	if err != nil {
		return nil, err
	}
	return instantiate(sh, literalAssign(sh), w)
}
