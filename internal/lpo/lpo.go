// Package lpo implements the paper's core contribution: the closed-loop
// pipeline of Algorithm 1. For each candidate instruction sequence it
// prompts the LLM, preprocesses the proposal with the optimizer (syntax
// check + canonicalization), filters uninteresting candidates using the
// static performance model, verifies refinement with the translation
// validator, and — when a check fails — feeds the error message or
// counterexample back to the LLM for another attempt.
package lpo

import (
	"fmt"

	"repro/internal/alive"
	"repro/internal/ir"
	"repro/internal/llm"
	"repro/internal/mca"
	"repro/internal/opt"
	"repro/internal/parser"
)

// Config tunes the pipeline. The zero value reproduces the paper's settings
// (ATTEMPT_LIMIT = 2, btver2 interestingness model).
type Config struct {
	AttemptLimit int         // max LLM attempts per sequence (paper: 2)
	Opt          opt.Options // optimizer used for candidate preprocessing
	Verify       alive.Options
	CPU          *mca.CPUModel
	// DisableInterestingness skips the interestingness filter (ablation).
	DisableInterestingness bool
	// DisableOptPreprocess skips running opt on candidates (ablation).
	DisableOptPreprocess bool
}

func (c Config) withDefaults() Config {
	if c.AttemptLimit == 0 {
		c.AttemptLimit = 2
	}
	if c.CPU == nil {
		c.CPU = mca.BTVer2()
	}
	return c
}

// Outcome classifies one sequence's trip through the loop.
type Outcome string

// Outcomes.
const (
	Found         Outcome = "found"         // verified missed optimization
	Uninteresting Outcome = "uninteresting" // candidate no better than the original
	Refuted       Outcome = "refuted"       // all attempts failed verification
	SyntaxFailed  Outcome = "syntax-failed" // all attempts failed to parse
	NoProposal    Outcome = "no-proposal"   // LLM echoed the input
	Errored       Outcome = "error"         // provider error
)

// Attempt records one iteration of the loop for reporting and tests.
type Attempt struct {
	Candidate string // raw LLM text (IR extracted)
	Feedback  string // feedback generated FROM this attempt ("" if none)
	Parsed    bool
	Verified  bool
}

// Result is the outcome for one instruction sequence.
type Result struct {
	Outcome  Outcome
	Src      *ir.Func
	Cand     *ir.Func // verified candidate (Outcome == Found)
	Attempts []Attempt
	Usage    llm.Usage // accumulated over attempts
	// Gain metrics for found optimizations.
	InstrsBefore, InstrsAfter int
	CyclesBefore, CyclesAfter int
}

// Pipeline binds the substrates together.
type Pipeline struct {
	Client llm.Client
	Cfg    Config
}

// New builds a pipeline with the given client and config defaults applied.
func New(client llm.Client, cfg Config) *Pipeline {
	return &Pipeline{Client: client, Cfg: cfg.withDefaults()}
}

// prompt renders the initial user message for a sequence.
func prompt(src *ir.Func) string {
	return "Optimize the following LLVM IR instruction sequence. " +
		"Reply with a complete function that is a correct refinement:\n\n" +
		src.String()
}

// OptimizeSeq runs Algorithm 1's inner loop (lines 6-24) on one wrapped
// sequence. round seeds the provider so repeated rounds resample.
func (p *Pipeline) OptimizeSeq(src *ir.Func, round int) Result {
	res := Result{Outcome: NoProposal, Src: src}
	srcRep := mca.Analyze(src, p.Cfg.CPU)
	res.InstrsBefore = srcRep.Instructions
	res.CyclesBefore = srcRep.TotalCycles

	messages := []llm.Message{
		{Role: llm.RoleSystem, Content: llm.SystemPrompt},
		{Role: llm.RoleUser, Content: prompt(src)},
	}
	sawRefutation := false
	sawSyntaxError := false
	for attempt := 0; attempt < p.Cfg.AttemptLimit; attempt++ {
		resp, err := p.Client.Complete(llm.Request{
			Model:    p.Client.Profile().Name,
			Messages: messages,
			Round:    round,
		})
		if err != nil {
			res.Outcome = Errored
			return res
		}
		res.Usage.InputTokens += resp.Usage.InputTokens
		res.Usage.OutputTokens += resp.Usage.OutputTokens
		res.Usage.VirtualSeconds += resp.Usage.VirtualSeconds
		res.Usage.CostUSD += resp.Usage.CostUSD
		messages = append(messages, llm.Message{Role: llm.RoleAssistant, Content: resp.Text})

		att := Attempt{Candidate: llm.ExtractFunc(resp.Text)}
		// Step 3: preprocess with opt — syntax check first.
		cand, perr := parser.ParseFunc(att.Candidate)
		if perr != nil {
			att.Feedback = perr.Error()
			res.Attempts = append(res.Attempts, att)
			sawSyntaxError = true
			messages = append(messages, llm.Message{Role: llm.RoleUser, Content: att.Feedback})
			continue
		}
		att.Parsed = true
		if !p.Cfg.DisableOptPreprocess {
			cand = opt.Run(cand, p.Cfg.Opt)
		}
		// Step 4: interestingness.
		if !p.Cfg.DisableInterestingness && !Interesting(src, cand, p.Cfg.CPU) {
			res.Attempts = append(res.Attempts, att)
			res.Outcome = NoProposal
			if ir.Hash(cand) != ir.Hash(src) {
				res.Outcome = Uninteresting
			}
			return res // Alg. 1 line 16: abandon the sequence.
		}
		// Step 5: correctness.
		verdict := alive.Verify(src, cand, p.Cfg.Verify)
		switch verdict.Verdict {
		case alive.Correct:
			att.Verified = true
			res.Attempts = append(res.Attempts, att)
			res.Outcome = Found
			res.Cand = cand
			rep := mca.Analyze(cand, p.Cfg.CPU)
			res.InstrsAfter = rep.Instructions
			res.CyclesAfter = rep.TotalCycles
			return res
		case alive.Incorrect:
			att.Feedback = verdict.CE.Format()
		case alive.Unsupported:
			att.Feedback = verdict.Err
		}
		res.Attempts = append(res.Attempts, att)
		sawRefutation = true
		messages = append(messages, llm.Message{Role: llm.RoleUser, Content: att.Feedback})
	}
	switch {
	case sawRefutation:
		res.Outcome = Refuted
	case sawSyntaxError:
		res.Outcome = SyntaxFailed
	}
	return res
}

// Interesting implements the paper's §3.3 check: a candidate is worth
// verifying if it has fewer instructions, fewer estimated cycles, or the
// same of both while being syntactically different (enabling later folds).
func Interesting(src, cand *ir.Func, cpu *mca.CPUModel) bool {
	sr := mca.Analyze(src, cpu)
	cr := mca.Analyze(cand, cpu)
	if cr.Instructions < sr.Instructions || cr.TotalCycles < sr.TotalCycles {
		return true
	}
	return cr.Instructions == sr.Instructions && cr.TotalCycles == sr.TotalCycles &&
		ir.Hash(src) != ir.Hash(cand)
}

// Stats aggregates a batch run.
type Stats struct {
	Sequences int
	ByOutcome map[Outcome]int
	Usage     llm.Usage
}

// RunBatch processes a list of wrapped sequences (Alg. 1 lines 5-24) and
// returns the found optimizations plus aggregate statistics.
func (p *Pipeline) RunBatch(seqs []*ir.Func, round int) ([]Result, Stats) {
	stats := Stats{ByOutcome: make(map[Outcome]int)}
	var found []Result
	for _, s := range seqs {
		r := p.OptimizeSeq(s, round)
		stats.Sequences++
		stats.ByOutcome[r.Outcome]++
		stats.Usage.InputTokens += r.Usage.InputTokens
		stats.Usage.OutputTokens += r.Usage.OutputTokens
		stats.Usage.VirtualSeconds += r.Usage.VirtualSeconds
		stats.Usage.CostUSD += r.Usage.CostUSD
		if r.Outcome == Found {
			found = append(found, r)
		}
	}
	return found, stats
}

// String renders a result for logs.
func (r Result) String() string {
	return fmt.Sprintf("%s: %d->%d instrs, %d->%d cycles",
		r.Outcome, r.InstrsBefore, r.InstrsAfter, r.CyclesBefore, r.CyclesAfter)
}
