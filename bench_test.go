package repro

// One benchmark per paper table and figure (deliverable (d)), plus the
// ablation benchmarks DESIGN.md §6 calls out. Experiment sizes are reduced
// per iteration so `go test -bench=.` completes in minutes; cmd/lpo-bench
// runs the full-size versions.

import (
	"context"
	"io"
	"testing"

	"repro/internal/alive"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/extract"
	"repro/internal/ir"
	"repro/internal/llm"
	"repro/internal/mca"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/souper"
)

const clampSrc = `define i8 @src(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`

const clampTgt = `define i8 @tgt(i32 %0) {
  %2 = tail call i32 @llvm.smax.i32(i32 %0, i32 0)
  %3 = tail call i32 @llvm.umin.i32(i32 %2, i32 255)
  %4 = trunc nuw i32 %3 to i8
  ret i8 %4
}`

// BenchmarkTable1Models renders the model roster (paper Table 1).
func BenchmarkTable1Models(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PrintTable1(io.Discard)
	}
}

// BenchmarkTable2RQ1 regenerates the RQ1 detection matrix (paper Table 2),
// one round per model per iteration.
func BenchmarkTable2RQ1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.RunRQ1(experiments.RQ1Options{Rounds: 1, Seed: uint64(i + 1)})
		rep.Print(io.Discard)
	}
}

// BenchmarkTable3RQ2 regenerates the RQ2 findings table (paper Table 3):
// corpus generation, extraction, discovery and both baselines.
func BenchmarkTable3RQ2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.RunRQ2(experiments.RQ2Options{Seed: uint64(i + 1), DiscoverRounds: 10})
		rep.Print(io.Discard)
	}
}

// BenchmarkTable4Throughput regenerates the throughput/cost comparison
// (paper Table 4) over a reduced sample.
func BenchmarkTable4Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.RunRQ3(experiments.RQ3Options{Sequences: 60, Seed: uint64(i + 1)})
		rep.Print(io.Discard)
	}
}

// BenchmarkTable5PatchImpact regenerates the patch-impact table (paper
// Table 5), including the real compile-time measurement.
func BenchmarkTable5PatchImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.RunTable5(uint64(i + 1))
		rep.Print(io.Discard)
	}
}

// BenchmarkFigure4CaseStudies replays the three case studies (paper Fig. 4).
func BenchmarkFigure4CaseStudies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.PrintFigure4(io.Discard, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Spec regenerates the SPEC-like runtime comparison (paper
// Figure 5).
func BenchmarkFigure5Spec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunFigure5(200)
		if err != nil {
			b.Fatal(err)
		}
		rep.Print(io.Discard)
	}
}

// --- Ablations (DESIGN.md §6) ---

func engineFor(attempts int, cfgMod func(*engine.Config)) (*engine.Engine, *ir.Func) {
	src := opt.RunO3(parser.MustParseFunc(clampSrc))
	sim := llm.NewSim("Gemini2.0T", 9)
	sim.Calibrate(ir.Hash(src), llm.Calibration{Minus: 2, Plus: 5})
	cfg := engine.Config{AttemptLimit: attempts, Verify: alive.Options{Samples: 256, Seed: 9},
		// The ablations measure the loop itself; disable the memoization so
		// every iteration pays the real verification cost.
		DisableVerifyCache: true}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	return engine.New(sim, cfg), src
}

// BenchmarkAblationAttemptLimit1 is LPO- (no feedback round).
func BenchmarkAblationAttemptLimit1(b *testing.B) {
	e, src := engineFor(1, nil)
	for i := 0; i < b.N; i++ {
		e.OptimizeSeq(context.Background(), src, i)
	}
}

// BenchmarkAblationAttemptLimit2 is the paper's configuration.
func BenchmarkAblationAttemptLimit2(b *testing.B) {
	e, src := engineFor(2, nil)
	for i := 0; i < b.N; i++ {
		e.OptimizeSeq(context.Background(), src, i)
	}
}

// BenchmarkAblationAttemptLimit4 doubles the feedback budget.
func BenchmarkAblationAttemptLimit4(b *testing.B) {
	e, src := engineFor(4, nil)
	for i := 0; i < b.N; i++ {
		e.OptimizeSeq(context.Background(), src, i)
	}
}

// BenchmarkAblationNoInterestingness shows the cost of skipping the cheap
// filter: every candidate goes straight to the verifier.
func BenchmarkAblationNoInterestingness(b *testing.B) {
	e, src := engineFor(2, func(c *engine.Config) { c.DisableInterestingness = true })
	for i := 0; i < b.N; i++ {
		e.OptimizeSeq(context.Background(), src, i)
	}
}

// BenchmarkAblationNoOptPreprocess skips candidate canonicalization.
func BenchmarkAblationNoOptPreprocess(b *testing.B) {
	e, src := engineFor(2, func(c *engine.Config) { c.DisableOptPreprocess = true })
	for i := 0; i < b.N; i++ {
		e.OptimizeSeq(context.Background(), src, i)
	}
}

// BenchmarkEngineWorkers measures the wall-clock scaling of the concurrent
// engine over a fixed extracted batch as the pool grows.
func BenchmarkEngineWorkers(b *testing.B) {
	projects := corpus.Generate(corpus.Options{Seed: 5, ModulesPerProject: 2, FuncsPerModule: 6})
	ex := extract.New(extract.Options{})
	var seqs []*extract.Sequence
	for _, p := range projects {
		for _, m := range p.Modules {
			seqs = append(seqs, ex.Module(m)...)
		}
	}
	if len(seqs) > 120 {
		seqs = seqs[:120]
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim := llm.NewSim("Gemini2.0T", 5)
				e := engine.New(sim, engine.Config{
					Workers: workers, Rounds: 2,
					Verify: alive.Options{Samples: 128, Seed: 5},
				})
				results, _ := e.RunAll(context.Background(), engine.Sequences(seqs...))
				if len(results) != len(seqs) {
					b.Fatal("lost results")
				}
			}
		})
	}
}

// BenchmarkAblationDedup measures extraction with the cross-module dedup set
// (the paper eliminates ~8.7M duplicates this way).
func BenchmarkAblationDedup(b *testing.B) {
	projects := corpus.Generate(corpus.Options{Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := extract.New(extract.Options{})
		for _, p := range projects {
			for _, m := range p.Modules {
				ex.Module(m)
			}
		}
	}
}

// BenchmarkAblationNoDedup rebuilds the dedup set per module, so duplicates
// survive across modules — the configuration the dedup design avoids.
func BenchmarkAblationNoDedup(b *testing.B) {
	projects := corpus.Generate(corpus.Options{Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range projects {
			for _, m := range p.Modules {
				extract.New(extract.Options{}).Module(m)
			}
		}
	}
}

// BenchmarkSouperEnum sweeps the Enum parameter (the paper's cost/coverage
// frontier).
func BenchmarkSouperEnum(b *testing.B) {
	src := parser.MustParseFunc(`define i8 @src(i8 %x, i8 %y) {
  %a = and i8 %x, %y
  %o = or i8 %x, %y
  %r = xor i8 %a, %o
  ret i8 %r
}`)
	for _, enum := range []int{0, 1, 2, 3} {
		enum := enum
		b.Run(benchName("enum", enum), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				souper.Optimize(src, souper.Options{Enum: enum, Seed: uint64(i)})
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + string(rune('0'+n))
}

// --- Substrate micro-benchmarks ---

func BenchmarkParserClamp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := parser.ParseFunc(clampSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptClamp(b *testing.B) {
	f := parser.MustParseFunc(clampSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.RunO3(f)
	}
}

// BenchmarkOptAllRules runs the full pipeline with every patch and
// knowledge-base rule enabled — the configuration the simulated LLM uses for
// every proposal, and the worst case for rule dispatch. The per-rule
// old-vs-new dispatch comparison lives in internal/opt's
// BenchmarkRewriteDispatch; the sub-benchmarks here show what sharing the
// prebuilt opcode-indexed RuleSet across runs saves over rebuilding it.
func BenchmarkOptAllRules(b *testing.B) {
	f := parser.MustParseFunc(clampSrc)
	rules := opt.AllRuleNames()
	b.Run("per-run-tables", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opt.Run(f, opt.Options{Patches: rules})
		}
	})
	rs := opt.NewRuleSet(opt.Options{Patches: rules})
	b.Run("prebuilt-ruleset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opt.Run(f, opt.Options{Rules: rs})
		}
	})
}

// BenchmarkVerify measures the compile-once checker on a representative
// benchdata-style window (the paper's clamp case) with a shared program
// cache, the engine verify stage's steady-state configuration. Compare
// BenchmarkVerifyReference (the seed's Exec-per-input path) for the speedup;
// BENCH_4.json records both. The workload bodies live in
// experiments (perf.go) so `lpo-bench -json` measures exactly the same
// work as these benchmarks.
func BenchmarkVerify(b *testing.B) { experiments.BenchVerify(b) }

// BenchmarkVerifyReference is the pre-compile-once verification path, kept
// as the perf trajectory's baseline.
func BenchmarkVerifyReference(b *testing.B) { experiments.BenchVerifyReference(b) }

// BenchmarkVerifyBatch is the tiered checker reused across calls (the CEGIS
// steady state): pure lane-batched verification with everything warm.
func BenchmarkVerifyBatch(b *testing.B) { experiments.BenchVerifyBatch(b) }

// BenchmarkVerifyMultiBlock measures the reused checker on a branchy pair
// (an abs-value diamond vs its branch-free form): since the masked
// multi-block scheduler landed, these vectors run lane-batched instead of
// through the per-vector fallback.
func BenchmarkVerifyMultiBlock(b *testing.B) { experiments.BenchVerifyMultiBlock(b) }

// BenchmarkVerifyMemory measures the reused checker on a load/store pair:
// per-lane memory slabs let pointer programs batch, including the
// columnwise memory-fill generation and the per-lane final-memory diff.
func BenchmarkVerifyMemory(b *testing.B) { experiments.BenchVerifyMemory(b) }

// BenchmarkVerifyWidths measures a generalize-style width sweep (the same
// pair re-instantiated and re-verified at i8/i16/i32/i64) with the shared
// program cache.
func BenchmarkVerifyWidths(b *testing.B) { experiments.BenchVerifyWidths(b) }

func BenchmarkAliveVerifyClamp(b *testing.B) {
	src := parser.MustParseFunc(clampSrc)
	tgt := parser.MustParseFunc(clampTgt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := alive.Verify(src, tgt, alive.Options{Samples: 1024, Seed: uint64(i)})
		if r.Verdict != alive.Correct {
			b.Fatal("verification regressed")
		}
	}
}

// BenchmarkInterpExec measures the reference tree-walker on the clamp
// window (body shared with the `lpo-bench -json` snapshot).
func BenchmarkInterpExec(b *testing.B) { experiments.BenchInterpExec(b) }

// BenchmarkInterpCompiled is BenchmarkInterpExec through the compile-once
// evaluator: the per-execution cost once the window is compiled (body shared
// with the `lpo-bench -json` snapshot).
func BenchmarkInterpCompiled(b *testing.B) { experiments.BenchInterpCompiled(b) }

// BenchmarkInterpBatch executes one lane batch (interp.BatchWidth vectors)
// of the clamp window per op through a warm evaluator (body shared with the
// `lpo-bench -json` snapshot); divide by interp.BatchWidth for per-vector
// cost.
func BenchmarkInterpBatch(b *testing.B) { experiments.BenchInterpBatch(b) }

// BenchmarkWasmDecode decodes the embedded wasm fixture corpus per op (body
// shared with the `lpo-bench -json` snapshot).
func BenchmarkWasmDecode(b *testing.B) { experiments.BenchWasmDecode(b) }

// BenchmarkWasmLift lifts the decoded fixture corpus to SSA IR per op (body
// shared with the `lpo-bench -json` snapshot).
func BenchmarkWasmLift(b *testing.B) { experiments.BenchWasmLift(b) }

// BenchmarkStoreCommit is the pre-scaling durability baseline: one fsync
// per finding, serial (body shared with the `lpo-bench -json` snapshot).
func BenchmarkStoreCommit(b *testing.B) { experiments.BenchStoreCommit(b) }

// BenchmarkStoreGroupCommit runs 8 clients with a per-record durability
// barrier against one group-committed log — concurrent barriers share
// fsyncs (body shared with the `lpo-bench -json` snapshot).
func BenchmarkStoreGroupCommit(b *testing.B) { experiments.BenchStoreGroupCommit(b) }

// BenchmarkIngestThroughput is the full scaled ingest path — 4 shards,
// group commit, 8 clients batching 32 records per barrier; its ratio to
// BenchmarkStoreCommit is the snapshot's ingest_speedup (body shared with
// the `lpo-bench -json` snapshot).
func BenchmarkIngestThroughput(b *testing.B) { experiments.BenchIngestThroughput(b) }

func BenchmarkMCAAnalyze(b *testing.B) {
	f := parser.MustParseFunc(clampSrc)
	model := mca.BTVer2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mca.Analyze(f, model)
	}
}

func BenchmarkExtractModule(b *testing.B) {
	projects := corpus.Generate(corpus.Options{Seed: 5, ModulesPerProject: 1, FuncsPerModule: 8})
	m := projects[0].Modules[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extract.New(extract.Options{}).Module(m)
	}
}
