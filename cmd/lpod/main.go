// Command lpod is the discovery daemon: a long-running HTTP/JSON service
// that accepts IR windows, deduplicates them against a persistent
// content-addressed store, runs only the novel ones through the discovery
// engine, and serves findings, the accumulated rulebook and live statistics.
//
//	lpod -store /var/lib/lpod -addr :8347
//
// Submit windows (raw .ll or JSON {"ir": "..."} / {"windows": [...]}):
//
//	curl -X POST --data-binary @window.ll http://localhost:8347/v1/windows
//
// and read results back:
//
//	curl http://localhost:8347/v1/findings/<16-hex-window-hash>
//	curl http://localhost:8347/v1/rulebook
//	curl http://localhost:8347/v1/stats
//
// Restarting the daemon against the same store resumes where it stopped:
// previously processed windows are answered from disk without any provider
// or verifier work.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8347", "HTTP listen address")
		storeDir = flag.String("store", "", "store directory (required; created if missing)")
		model    = flag.String("model", "Gemini2.0T", "simulated provider model")
		seed     = flag.Uint64("seed", 1, "simulation / verification seed")
		workers  = flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
		rounds   = flag.Int("rounds", 1, "provider rounds per window")
		queue    = flag.Int("queue", 0, "submit queue depth (0 = 2*workers)")
		maxBody  = flag.Int64("max-body", 4<<20, "request body size limit in bytes (413 above)")
		stageTO  = flag.Duration("stage-timeout", 0, "per-stage deadline inside the engine (0 = unbounded)")
		shards   = flag.Int("shards", 0, "shard the store over N logs (0 = keep the directory's current layout; a legacy single log is migrated when N > 0)")
		compact  = flag.Bool("compact", false, "compact the store on startup (drop pool vectors the eviction clock retired)")
		persistW = flag.Int("persist-workers", 0, "result persistence workers (0 = default)")
		gcDelay  = flag.Duration("commit-delay", 0, "group-commit coalescing window (0 = default 500µs, negative = commit immediately)")
		gcBatch  = flag.Int("commit-batch", 0, "group-commit max records per batch (0 = default 512)")
		noGC     = flag.Bool("no-group-commit", false, "disable the group committer (one fsync per persist barrier)")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "lpod: -store is required")
		flag.Usage()
		os.Exit(2)
	}

	// Layout: an explicitly requested -shards N (or a directory that is
	// already sharded) runs the fanned-out store; otherwise the plain single
	// log. OpenSharded migrates a legacy lpod.log in place and an existing
	// shard count always wins over the flag.
	existing, err := store.ShardCount(*storeDir)
	if err != nil {
		log.Fatalf("lpod: inspecting store layout: %v", err)
	}
	var st store.Backend
	if *shards > 0 || existing > 0 {
		sh, err := store.OpenSharded(*storeDir, *shards)
		if err != nil {
			log.Fatalf("lpod: opening sharded store: %v", err)
		}
		st = sh
	} else {
		ps, err := store.Open(*storeDir)
		if err != nil {
			log.Fatalf("lpod: opening store: %v", err)
		}
		st = ps
	}
	stats := st.Stats()
	log.Printf("lpod: store %s (%d shard(s)): %d findings, %d rules, %d vectors (%d bytes)",
		st.Dir(), stats.Shards, stats.Findings, stats.Rules, stats.Vectors, stats.Bytes)
	if stats.Recovered > 0 {
		log.Printf("lpod: recovered from torn tail: %d bytes dropped", stats.Recovered)
	}
	if !*noGC {
		st.StartGroupCommit(store.GroupCommitOptions{MaxDelay: *gcDelay, MaxBatch: *gcBatch})
	}

	srv, err := service.New(service.Config{
		Store:          st,
		Model:          *model,
		Seed:           *seed,
		MaxBodyBytes:   *maxBody,
		PersistWorkers: *persistW,
		Logf:           log.Printf,
		Engine: engine.Config{
			Workers:      *workers,
			Rounds:       *rounds,
			QueueSize:    *queue,
			StageTimeout: *stageTO,
		},
	})
	if err != nil {
		st.Close()
		log.Fatalf("lpod: %v", err)
	}
	if n := srv.LoadedVectors(); n > 0 {
		log.Printf("lpod: warm-loaded %d counterexample vectors into the pool", n)
	}
	if *compact {
		cs, err := srv.Compact()
		if err != nil {
			log.Printf("lpod: startup compaction failed (store unchanged): %v", err)
		} else {
			log.Printf("lpod: compacted: kept %d, dropped %d, %d -> %d bytes",
				cs.Kept, cs.Dropped, cs.BytesBefore, cs.BytesAfter)
		}
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slow or stalled clients cannot hold connections (and their
		// handler goroutines) forever. WriteTimeout stays 0: the
		// /v1/findings?watch=1 SSE stream is a deliberately unbounded
		// response, and its heartbeat detects dead peers instead.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("lpod: listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("lpod: %s: draining (signal again to force exit)", sig)
	case err := <-errc:
		log.Printf("lpod: server error: %v", err)
	}
	// A second signal skips the graceful drain — the escape hatch when the
	// drain itself is wedged (e.g. a pathological window mid-verification).
	go func() {
		sig := <-sigc
		log.Printf("lpod: %s: forcing exit", sig)
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := srv.Close(); err != nil {
		log.Printf("lpod: close: %v", err)
	}
	if err := st.Close(); err != nil {
		log.Printf("lpod: store close: %v", err)
	}
	log.Printf("lpod: stopped")
}
