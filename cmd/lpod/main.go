// Command lpod is the discovery daemon: a long-running HTTP/JSON service
// that accepts IR windows, deduplicates them against a persistent
// content-addressed store, runs only the novel ones through the discovery
// engine, and serves findings, the accumulated rulebook and live statistics.
//
//	lpod -store /var/lib/lpod -addr :8347
//
// Submit windows (raw .ll or JSON {"ir": "..."} / {"windows": [...]}):
//
//	curl -X POST --data-binary @window.ll http://localhost:8347/v1/windows
//
// and read results back:
//
//	curl http://localhost:8347/v1/findings/<16-hex-window-hash>
//	curl http://localhost:8347/v1/rulebook
//	curl http://localhost:8347/v1/stats
//
// Restarting the daemon against the same store resumes where it stopped:
// previously processed windows are answered from disk without any provider
// or verifier work.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8347", "HTTP listen address")
		storeDir = flag.String("store", "", "store directory (required; created if missing)")
		model    = flag.String("model", "Gemini2.0T", "simulated provider model")
		seed     = flag.Uint64("seed", 1, "simulation / verification seed")
		workers  = flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
		rounds   = flag.Int("rounds", 1, "provider rounds per window")
		queue    = flag.Int("queue", 0, "submit queue depth (0 = 2*workers)")
		maxBody  = flag.Int64("max-body", 4<<20, "request body size limit in bytes (413 above)")
		stageTO  = flag.Duration("stage-timeout", 0, "per-stage deadline inside the engine (0 = unbounded)")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "lpod: -store is required")
		flag.Usage()
		os.Exit(2)
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		log.Fatalf("lpod: opening store: %v", err)
	}
	stats := st.Stats()
	log.Printf("lpod: store %s: %d findings, %d rules, %d vectors (%d bytes)",
		st.Dir(), stats.Findings, stats.Rules, stats.Vectors, stats.Bytes)
	if stats.Recovered > 0 {
		log.Printf("lpod: recovered from torn tail: %d bytes dropped", stats.Recovered)
	}

	srv, err := service.New(service.Config{
		Store:        st,
		Model:        *model,
		Seed:         *seed,
		MaxBodyBytes: *maxBody,
		Engine: engine.Config{
			Workers:      *workers,
			Rounds:       *rounds,
			QueueSize:    *queue,
			StageTimeout: *stageTO,
		},
	})
	if err != nil {
		st.Close()
		log.Fatalf("lpod: %v", err)
	}
	if n := srv.LoadedVectors(); n > 0 {
		log.Printf("lpod: warm-loaded %d counterexample vectors into the pool", n)
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slow or stalled clients cannot hold connections (and their
		// handler goroutines) forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("lpod: listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("lpod: %s: draining (signal again to force exit)", sig)
	case err := <-errc:
		log.Printf("lpod: server error: %v", err)
	}
	// A second signal skips the graceful drain — the escape hatch when the
	// drain itself is wedged (e.g. a pathological window mid-verification).
	go func() {
		sig := <-sigc
		log.Printf("lpod: %s: forcing exit", sig)
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := srv.Close(); err != nil {
		log.Printf("lpod: close: %v", err)
	}
	if err := st.Close(); err != nil {
		log.Printf("lpod: store close: %v", err)
	}
	log.Printf("lpod: stopped")
}
