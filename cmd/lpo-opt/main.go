// Command lpo-opt is the reproduction's `opt`: it parses .ll from a file or
// stdin, runs the baseline peephole pipeline (optionally with patch,
// knowledge-base or learned rules enabled), and prints the optimized module.
//
// The -rules flag lists the rule registry instead of optimizing: one line
// per rule with its ID, enable name, provenance (baseline rules are always
// on; patch and kb rules are enabled via -patches / -all-rules; learned
// rules come from -rulebook), the root opcodes it dispatches on, and the
// pattern it implements. -json renders the same listing machine-readably.
//
// The -rulebook flag loads rules learned by `lpo -learn` (see
// internal/generalize): the optimizer then closes every window the learned
// rules cover, which is how a discovery campaign's findings compound into
// later compiles.
//
// Usage:
//
//	lpo-opt [-patches 143636,163108] [-all-rules] [-rulebook book.json] [-workers N] [file.ll]
//	lpo-opt -rules [-json] [-rulebook book.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/generalize"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/parser"
)

func main() {
	patches := flag.String("patches", "", "comma-separated patch/rule names to enable")
	allRules := flag.Bool("all-rules", false, "enable every patch and knowledge-base rule")
	workers := flag.Int("workers", 0, "optimize functions in parallel (0 = one per CPU)")
	listRules := flag.Bool("rules", false, "list the rule registry with provenance and exit")
	jsonOut := flag.Bool("json", false, "with -rules: emit the registry as JSON")
	rulebook := flag.String("rulebook", "", "load learned rules from a rulebook file")
	flag.Parse()

	var learned []*opt.Rule
	if *rulebook != "" {
		var err error
		if learned, err = generalize.LoadOptRules(*rulebook); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *listRules {
		all := append(opt.Rules(), learned...)
		if *jsonOut {
			if err := printRulesJSON(os.Stdout, all); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		printRules(os.Stdout, all)
		return
	}

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, perr := parser.Parse(string(src))
	if perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	}
	var rules []string
	if *allRules {
		rules = opt.AllRuleNames()
	} else if *patches != "" {
		rules = strings.Split(*patches, ",")
	}
	// The rule selection and its opcode-indexed dispatch table are built
	// once and shared by every worker; RuleSet is immutable after creation,
	// and learned rules join it through a copy-on-extend.
	rs := opt.NewRuleSet(opt.Options{Patches: rules}).WithRules(learned...)
	// Functions are optimized independently; ParMap fans them out and keeps
	// module order, so output is identical at every worker count.
	out := &ir.Module{Name: m.Name}
	out.Funcs = engine.ParMap(context.Background(), *workers, m.Funcs,
		func(_ context.Context, _ int, f *ir.Func) *ir.Func {
			return opt.Run(f, opt.Options{Rules: rs})
		})
	fmt.Print(out.String())
}

// printRules renders the registry, one rule per line, in dispatch order.
func printRules(w io.Writer, rules []*opt.Rule) {
	fmt.Fprintf(w, "%d registered rules (baseline always on; enable others with -patches or -all-rules; learned rules via -rulebook)\n",
		len(rules))
	fmt.Fprintf(w, "%-28s %-10s %-10s %-18s %s\n", "ID", "ENABLE", "PROV", "ROOTS", "PATTERN")
	for _, r := range rules {
		enable := r.Name
		if r.Provenance == opt.ProvBaseline {
			enable = "-"
		}
		fmt.Fprintf(w, "%-28s %-10s %-10s %-18s %s\n",
			r.ID, enable, r.Provenance, strings.Join(rootNames(r), ","), r.Doc)
	}
}

// ruleJSON is the machine-readable registry row (-rules -json).
type ruleJSON struct {
	ID         string   `json:"id"`
	Name       string   `json:"name"`
	Provenance string   `json:"provenance"`
	Roots      []string `json:"roots"`
	Doc        string   `json:"doc"`
}

// printRulesJSON emits the registry for tooling, same order as the listing.
func printRulesJSON(w io.Writer, rules []*opt.Rule) error {
	out := make([]ruleJSON, 0, len(rules))
	for _, r := range rules {
		out = append(out, ruleJSON{
			ID: r.ID, Name: r.Name, Provenance: string(r.Provenance),
			Roots: rootNames(r), Doc: r.Doc,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func rootNames(r *opt.Rule) []string {
	roots := make([]string, len(r.Roots))
	for i, op := range r.Roots {
		roots[i] = op.Name()
	}
	return roots
}
