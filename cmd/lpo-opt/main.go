// Command lpo-opt is the reproduction's `opt`: it parses .ll from a file or
// stdin, runs the baseline peephole pipeline (optionally with patch or
// knowledge-base rules enabled), and prints the optimized module.
//
// The -rules flag lists the rule registry instead of optimizing: one line
// per rule with its ID, enable name, provenance (baseline rules are always
// on; patch and kb rules are enabled via -patches / -all-rules), the root
// opcodes it dispatches on, and the pattern it implements.
//
// Usage:
//
//	lpo-opt [-patches 143636,163108] [-all-rules] [-workers N] [file.ll]
//	lpo-opt -rules
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/parser"
)

func main() {
	patches := flag.String("patches", "", "comma-separated patch/rule names to enable")
	allRules := flag.Bool("all-rules", false, "enable every patch and knowledge-base rule")
	workers := flag.Int("workers", 0, "optimize functions in parallel (0 = one per CPU)")
	listRules := flag.Bool("rules", false, "list the rule registry with provenance and exit")
	flag.Parse()

	if *listRules {
		printRules(os.Stdout)
		return
	}

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, perr := parser.Parse(string(src))
	if perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	}
	var rules []string
	if *allRules {
		rules = opt.AllRuleNames()
	} else if *patches != "" {
		rules = strings.Split(*patches, ",")
	}
	// The rule selection and its opcode-indexed dispatch table are built
	// once and shared by every worker; RuleSet is immutable after creation.
	rs := opt.NewRuleSet(opt.Options{Patches: rules})
	// Functions are optimized independently; ParMap fans them out and keeps
	// module order, so output is identical at every worker count.
	out := &ir.Module{Name: m.Name}
	out.Funcs = engine.ParMap(context.Background(), *workers, m.Funcs,
		func(_ context.Context, _ int, f *ir.Func) *ir.Func {
			return opt.Run(f, opt.Options{Rules: rs})
		})
	fmt.Print(out.String())
}

// printRules renders the registry, one rule per line, in dispatch order.
func printRules(w io.Writer) {
	rules := opt.Rules()
	fmt.Fprintf(w, "%d registered rules (baseline always on; enable others with -patches or -all-rules)\n",
		len(rules))
	fmt.Fprintf(w, "%-28s %-10s %-10s %-18s %s\n", "ID", "ENABLE", "PROV", "ROOTS", "PATTERN")
	for _, r := range rules {
		roots := make([]string, len(r.Roots))
		for i, op := range r.Roots {
			roots[i] = op.Name()
		}
		enable := r.Name
		if r.Provenance == opt.ProvBaseline {
			enable = "-"
		}
		fmt.Fprintf(w, "%-28s %-10s %-10s %-18s %s\n",
			r.ID, enable, r.Provenance, strings.Join(roots, ","), r.Doc)
	}
}
