// Command lpo-opt is the reproduction's `opt`: it parses .ll from a file or
// stdin, runs the baseline peephole pipeline (optionally with patch or
// knowledge-base rules enabled), and prints the optimized module.
//
// Usage:
//
//	lpo-opt [-patches 143636,163108] [-all-rules] [-workers N] [file.ll]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/parser"
)

func main() {
	patches := flag.String("patches", "", "comma-separated patch/rule names to enable")
	allRules := flag.Bool("all-rules", false, "enable every patch and knowledge-base rule")
	workers := flag.Int("workers", 0, "optimize functions in parallel (0 = one per CPU)")
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, perr := parser.Parse(string(src))
	if perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	}
	var rules []string
	if *allRules {
		rules = opt.AllRuleNames()
	} else if *patches != "" {
		rules = strings.Split(*patches, ",")
	}
	// Functions are optimized independently; ParMap fans them out and keeps
	// module order, so output is identical at every worker count.
	out := &ir.Module{Name: m.Name}
	out.Funcs = engine.ParMap(context.Background(), *workers, m.Funcs,
		func(_ context.Context, _ int, f *ir.Func) *ir.Func {
			return opt.Run(f, opt.Options{Patches: rules})
		})
	fmt.Print(out.String())
}
