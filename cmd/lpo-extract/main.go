// Command lpo-extract runs the paper's Algorithm 2 on an .ll module — or a
// .wasm binary, lifted through the wasm frontend first — and prints each
// unique dependent instruction sequence as a wrapped function.
//
// Usage:
//
//	lpo-extract file.ll
//	lpo-extract file.wasm        (sniffed by the \0asm magic; -wasm forces it)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/extract"
	"repro/internal/ir"
	"repro/internal/parser"
	"repro/internal/wasm"
)

func main() {
	minLen := flag.Int("min", 2, "minimum sequence length")
	forceWasm := flag.Bool("wasm", false, "treat the input as a wasm binary (default: sniff the \\0asm magic)")
	flag.Parse()

	var src []byte
	var err error
	name := "stdin"
	if flag.NArg() > 0 {
		name = flag.Arg(0)
		src, err = os.ReadFile(name)
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var m *ir.Module
	if *forceWasm || wasm.IsWasm(src) {
		wm, werr := wasm.Decode(src)
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		var st wasm.LiftStats
		m, st = wasm.Lift(wm, name)
		fmt.Printf("; wasm lift: %s\n", st)
	} else {
		var perr error
		m, perr = parser.Parse(string(src))
		if perr != nil {
			fmt.Fprintln(os.Stderr, perr)
			os.Exit(1)
		}
	}
	// Stream: each kept sequence is printed as soon as Algorithm 2 finds it,
	// without materializing the whole extraction.
	ex := extract.New(extract.Options{MinLen: *minLen})
	ex.Stream(m, func(s *extract.Sequence) bool {
		fmt.Printf("; from @%s block %%%s (%d instructions)\n%s\n", s.Func, s.Block, s.Len, s.Fn)
		return true
	})
	st := ex.Stats()
	fmt.Printf("; %d raw sequences, %d kept, %d duplicates, %d already optimizable, %d too short\n",
		st.Sequences, st.Kept, st.Duplicates, st.Optimizable, st.TooShort)
}
