// Command lpo-extract runs the paper's Algorithm 2 on an .ll module and
// prints each unique dependent instruction sequence as a wrapped function.
//
// Usage:
//
//	lpo-extract file.ll
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/extract"
	"repro/internal/parser"
)

func main() {
	minLen := flag.Int("min", 2, "minimum sequence length")
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, perr := parser.Parse(string(src))
	if perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	}
	// Stream: each kept sequence is printed as soon as Algorithm 2 finds it,
	// without materializing the whole extraction.
	ex := extract.New(extract.Options{MinLen: *minLen})
	ex.Stream(m, func(s *extract.Sequence) bool {
		fmt.Printf("; from @%s block %%%s (%d instructions)\n%s\n", s.Func, s.Block, s.Len, s.Fn)
		return true
	})
	st := ex.Stats()
	fmt.Printf("; %d raw sequences, %d kept, %d duplicates, %d already optimizable, %d too short\n",
		st.Sequences, st.Kept, st.Duplicates, st.Optimizable, st.TooShort)
}
