// Command lpo-verify is the reproduction's Alive2: given a file containing
// two functions (source first, target second — or @src/@tgt by name), it
// checks refinement and prints either the verdict or a counterexample.
//
// Usage:
//
//	lpo-verify [-samples N] [-gain] pair.ll
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/alive"
	"repro/internal/engine"
	"repro/internal/mca"
	"repro/internal/parser"
)

func main() {
	samples := flag.Int("samples", 4096, "random samples when not exhaustive")
	seed := flag.Uint64("seed", 1, "sampling seed")
	gain := flag.Bool("gain", false, "also report the engine's filter-stage verdict (instrs/cycles gain)")
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, perr := parser.Parse(string(src))
	if perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	}
	if len(m.Funcs) < 2 {
		fmt.Fprintln(os.Stderr, "need two functions (source then target)")
		os.Exit(2)
	}
	sf, tf := m.Funcs[0], m.Funcs[1]
	if f := m.FuncByName("src"); f != nil {
		sf = f
	}
	if f := m.FuncByName("tgt"); f != nil {
		tf = f
	}
	if *gain {
		cpu := mca.BTVer2()
		sr, tr := mca.Analyze(sf, cpu), mca.Analyze(tf, cpu)
		verdict := "uninteresting"
		if engine.Interesting(sf, tf, cpu) {
			verdict = "interesting"
		}
		fmt.Printf("filter stage: %s (%d->%d instrs, %d->%d cycles)\n",
			verdict, sr.Instructions, tr.Instructions, sr.TotalCycles, tr.TotalCycles)
	}
	res := alive.Verify(sf, tf, alive.Options{Samples: *samples, Seed: *seed})
	switch res.Verdict {
	case alive.Correct:
		mode := "sampled"
		if res.Exhaustive {
			mode = "exhaustive"
		}
		fmt.Printf("Transformation seems to be correct! (%d inputs, %s)\n", res.Checked, mode)
	case alive.Incorrect:
		fmt.Print(res.CE.Format())
		os.Exit(1)
	case alive.Unsupported:
		fmt.Println(res.Err)
		os.Exit(2)
	}
}
