// Command lpo-verify is the reproduction's Alive2: given a file containing
// two functions (source first, target second — or @src/@tgt by name), it
// checks refinement and prints either the verdict or a counterexample.
//
// Usage:
//
//	lpo-verify [-samples N] pair.ll
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/alive"
	"repro/internal/parser"
)

func main() {
	samples := flag.Int("samples", 4096, "random samples when not exhaustive")
	seed := flag.Uint64("seed", 1, "sampling seed")
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, perr := parser.Parse(string(src))
	if perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	}
	if len(m.Funcs) < 2 {
		fmt.Fprintln(os.Stderr, "need two functions (source then target)")
		os.Exit(2)
	}
	sf, tf := m.Funcs[0], m.Funcs[1]
	if f := m.FuncByName("src"); f != nil {
		sf = f
	}
	if f := m.FuncByName("tgt"); f != nil {
		tf = f
	}
	res := alive.Verify(sf, tf, alive.Options{Samples: *samples, Seed: *seed})
	switch res.Verdict {
	case alive.Correct:
		mode := "sampled"
		if res.Exhaustive {
			mode = "exhaustive"
		}
		fmt.Printf("Transformation seems to be correct! (%d inputs, %s)\n", res.Checked, mode)
	case alive.Incorrect:
		fmt.Print(res.CE.Format())
		os.Exit(1)
	case alive.Unsupported:
		fmt.Println(res.Err)
		os.Exit(2)
	}
}
