// Command lpo-verify is the reproduction's Alive2: given a file containing
// two functions (source first, target second — or @src/@tgt by name), it
// checks refinement and prints either the verdict or a counterexample.
//
// The -widths flag re-checks the rewrite at alternate bit widths: both
// functions are re-instantiated at each width under the literal constant
// policy (internal/generalize.Rewidth) and re-verified with the multi-width
// alive helper — a quick probe for whether a concrete finding is
// width-generic before learning it properly with `lpo -learn`.
//
// The -stats flag prints the tiered scheduler's behaviour for each check:
// how many input vectors every tier executed (pool replays / special values
// / random samples), which tier found the counterexample, the batch
// coverage (vectors run lane-batched versus the per-vector fallback), and
// the pool's deposit counters — so the scheduler is observable from the CLI.
//
// Usage:
//
//	lpo-verify [-samples N] [-gain] [-stats] [-widths 8,16,32,64] pair.ll
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/alive"
	"repro/internal/engine"
	"repro/internal/generalize"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mca"
	"repro/internal/parser"
)

func main() {
	samples := flag.Int("samples", 4096, "random samples when not exhaustive")
	seed := flag.Uint64("seed", 1, "sampling seed")
	gain := flag.Bool("gain", false, "also report the engine's filter-stage verdict (instrs/cycles gain)")
	stats := flag.Bool("stats", false, "print the tier breakdown of each check (pool/special/random executions and kills)")
	widthsFlag := flag.String("widths", "", "comma-separated bit widths to re-check the rewrite at (e.g. 8,16,32,64)")
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, perr := parser.Parse(string(src))
	if perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	}
	if len(m.Funcs) < 2 {
		fmt.Fprintln(os.Stderr, "need two functions (source then target)")
		os.Exit(2)
	}
	sf, tf := m.Funcs[0], m.Funcs[1]
	if f := m.FuncByName("src"); f != nil {
		sf = f
	}
	if f := m.FuncByName("tgt"); f != nil {
		tf = f
	}
	if *gain {
		cpu := mca.BTVer2()
		sr, tr := mca.Analyze(sf, cpu), mca.Analyze(tf, cpu)
		verdict := "uninteresting"
		if engine.Interesting(sf, tf, cpu) {
			verdict = "interesting"
		}
		fmt.Printf("filter stage: %s (%d->%d instrs, %d->%d cycles)\n",
			verdict, sr.Instructions, tr.Instructions, sr.TotalCycles, tr.TotalCycles)
	}
	// One compiled-program cache and one counterexample pool back the main
	// check and the width sweep: each (re-)instantiated function compiles
	// once, and a falsifying input found at one width is replayed first
	// (tier 0) everywhere else.
	pool := alive.NewCEPool()
	opts := alive.Options{Samples: *samples, Seed: *seed, Programs: interp.NewCache(), Pool: pool}
	res := alive.NewChecker(sf, tf, opts).Verify()
	exit := 0
	switch res.Verdict {
	case alive.Correct:
		mode := "sampled"
		if res.Exhaustive {
			mode = "exhaustive"
		}
		fmt.Printf("Transformation seems to be correct! (%d inputs, %s)\n", res.Checked, mode)
	case alive.Incorrect:
		fmt.Print(res.CE.Format())
		exit = 1
	case alive.Unsupported:
		fmt.Println(res.Err)
		exit = 2
	}
	if *stats {
		printTierStats(res)
	}
	if *widthsFlag != "" {
		widths, err := parseWidths(*widthsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, wr := range alive.VerifyWidths(widths, opts, func(w int) (*ir.Func, *ir.Func, error) {
			s, err := generalize.Rewidth(sf, w)
			if err != nil {
				return nil, nil, err
			}
			t, err := generalize.Rewidth(tf, w)
			if err != nil {
				return nil, nil, err
			}
			return s, t, nil
		}) {
			switch wr.Verdict {
			case alive.Correct:
				mode := "sampled"
				if wr.Exhaustive {
					mode = "exhaustive"
				}
				fmt.Printf("width i%-2d: correct (%d inputs, %s)\n", wr.Width, wr.Checked, mode)
			case alive.Incorrect:
				fmt.Printf("width i%-2d: counterexample\n%s", wr.Width, wr.CE.Format())
				if exit == 0 {
					exit = 1
				}
			case alive.Unsupported:
				fmt.Printf("width i%-2d: not checkable (%s)\n", wr.Width, wr.Err)
			}
			if *stats && wr.Verdict != alive.Unsupported {
				printTierStats(wr.Result)
			}
		}
	}
	if *stats {
		ps := pool.Stats()
		fmt.Printf("ce pool: %d windows, %d vectors (%d deposits, %d duplicates)\n",
			ps.Windows, ps.Vectors, ps.Deposits, ps.Dups)
	}
	os.Exit(exit)
}

// printTierStats renders one check's scheduler breakdown: executions per
// tier and, for refuted pairs, the tier that found the violation.
func printTierStats(res alive.Result) {
	t := res.Tiers
	killed := "none"
	switch t.KillTier {
	case alive.TierPool:
		killed = "pool replay"
	case alive.TierSpecial:
		killed = "special values"
	case alive.TierRandom:
		killed = "random samples"
	}
	fmt.Printf("  tiers: %d executed (pool %d, special %d, random %d), killed by: %s\n",
		res.Checked, t.PoolChecked, t.SpecialChecked, t.RandomChecked, killed)
	coverage := 100.0
	if res.Checked > 0 {
		coverage = 100 * float64(t.Batched) / float64(res.Checked)
	}
	fmt.Printf("  batch coverage: %.1f%% (%d batched, %d per-vector fallback)\n",
		coverage, t.Batched, t.Fallback)
}

func parseWidths(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 2 || w > 64 {
			return nil, fmt.Errorf("bad width %q (want integers in 2..64)", part)
		}
		out = append(out, w)
	}
	return out, nil
}
