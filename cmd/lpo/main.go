// Command lpo runs the full discovery pipeline (paper Algorithm 1) over an
// .ll module or over the built-in synthetic corpus: extract dependent
// instruction sequences, prompt the (simulated) LLM, verify candidates, and
// report every verified missed optimization.
//
// Usage:
//
//	lpo [-model Gemini2.0T] [-rounds 4] [file.ll]
//	lpo -corpus            run over the synthetic 14-project corpus
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/alive"
	"repro/internal/corpus"
	"repro/internal/extract"
	"repro/internal/ir"
	"repro/internal/llm"
	"repro/internal/lpo"
	"repro/internal/parser"
)

func main() {
	model := flag.String("model", "Gemini2.0T", "model profile to simulate")
	rounds := flag.Int("rounds", 4, "attempts (rounds) per sequence")
	seed := flag.Uint64("seed", 1, "seed")
	useCorpus := flag.Bool("corpus", false, "scan the synthetic corpus instead of a file")
	flag.Parse()

	var seqs []*ir.Func
	ex := extract.New(extract.Options{})
	if *useCorpus {
		for _, p := range corpus.Generate(corpus.Options{Seed: *seed}) {
			for _, m := range p.Modules {
				for _, s := range ex.Module(m) {
					seqs = append(seqs, s.Fn)
				}
			}
		}
	} else {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: lpo [flags] file.ll  (or -corpus)")
			os.Exit(2)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m, perr := parser.Parse(string(data))
		if perr != nil {
			fmt.Fprintln(os.Stderr, perr)
			os.Exit(1)
		}
		for _, s := range ex.Module(m) {
			seqs = append(seqs, s.Fn)
		}
	}
	st := ex.Stats()
	fmt.Printf("extracted %d unique sequences (%d raw, %d duplicates, %d already optimizable)\n",
		st.Kept, st.Sequences, st.Duplicates, st.Optimizable)

	sim := llm.NewSim(*model, *seed)
	pipe := lpo.New(sim, lpo.Config{Verify: alive.Options{Samples: 1024, Seed: *seed}})
	found := 0
	for _, s := range seqs {
		for round := 0; round < *rounds; round++ {
			res := pipe.OptimizeSeq(s, round)
			if res.Outcome == lpo.Found {
				found++
				fmt.Printf("\n=== missed optimization (%d->%d instrs, %d->%d cycles) ===\n",
					res.InstrsBefore, res.InstrsAfter, res.CyclesBefore, res.CyclesAfter)
				fmt.Printf("--- original ---\n%s--- optimized ---\n%s", s, res.Cand)
				break
			}
		}
	}
	fmt.Printf("\n%d verified missed optimizations found with %s\n", found, *model)
}
