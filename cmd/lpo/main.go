// Command lpo runs the full discovery pipeline (paper Algorithm 1) over an
// .ll module or over the built-in synthetic corpus. Sequences are extracted
// with Algorithm 2 and streamed through the concurrent engine: a pool of
// -workers workers drives each sequence through Propose → Preprocess →
// Filter → Verify, results are reassembled in input order, and every
// verified missed optimization is reported as it arrives. Interrupting the
// run (SIGINT) cancels the engine's context and drains cleanly.
//
// Usage:
//
//	lpo [-model Gemini2.0T] [-rounds 4] [-workers 8] [file.ll]
//	lpo -corpus            run over the synthetic 14-project corpus
//
// Concurrency flags:
//
//	-workers N   worker pool size (default: one per CPU); results are
//	             deterministic for a fixed -seed regardless of N
//	-queue N     bounded work/result queue size (default 2*workers),
//	             the backpressure window between extraction and the pool
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/alive"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/extract"
	"repro/internal/llm"
)

func main() {
	model := flag.String("model", "Gemini2.0T", "model profile to simulate")
	rounds := flag.Int("rounds", 4, "attempts (rounds) per sequence")
	seed := flag.Uint64("seed", 1, "seed")
	useCorpus := flag.Bool("corpus", false, "scan the synthetic corpus instead of a file")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = one per CPU)")
	queue := flag.Int("queue", 0, "bounded queue size (0 = 2*workers)")
	stats := flag.Bool("stats", true, "print per-stage engine statistics")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ex := extract.New(extract.Options{})
	var src engine.Source
	switch {
	case *useCorpus:
		src = engine.Corpus(corpus.Options{Seed: *seed}, ex)
	case flag.NArg() > 0:
		src = engine.File(flag.Arg(0), ex)
	default:
		fmt.Fprintln(os.Stderr, "usage: lpo [flags] file.ll  (or -corpus)")
		os.Exit(2)
	}

	sim := llm.NewSim(*model, *seed)
	eng := engine.New(sim, engine.Config{
		Workers:   *workers,
		QueueSize: *queue,
		Rounds:    *rounds,
		Verify:    alive.Options{Samples: 1024, Seed: *seed},
	})

	results, engStats := eng.Run(ctx, src)
	found := 0
	for res := range results {
		switch res.Outcome {
		case engine.Found:
			found++
			fmt.Printf("\n=== missed optimization (%d->%d instrs, %d->%d cycles, round %d) ===\n",
				res.InstrsBefore, res.InstrsAfter, res.CyclesBefore, res.CyclesAfter, res.Round)
			fmt.Printf("--- original ---\n%s--- optimized ---\n%s", res.Src, res.Cand)
		case engine.Errored:
			fmt.Fprintln(os.Stderr, res.Err)
			os.Exit(1)
		}
	}
	st := ex.Stats()
	fmt.Printf("\nextracted %d unique sequences (%d raw, %d duplicates, %d already optimizable)\n",
		st.Kept, st.Sequences, st.Duplicates, st.Optimizable)
	if *stats {
		engStats.Print(os.Stdout)
	}
	if ctx.Err() != nil {
		fmt.Println("(interrupted — partial results)")
	}
	fmt.Printf("%d verified missed optimizations found with %s\n", found, *model)
}
