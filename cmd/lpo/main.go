// Command lpo runs the full discovery pipeline (paper Algorithm 1) over an
// .ll module or over the built-in synthetic corpus. Sequences are extracted
// with Algorithm 2 and streamed through the concurrent engine: a pool of
// -workers workers drives each sequence through Propose → Preprocess →
// Filter → Verify, results are reassembled in input order, and every
// verified missed optimization is reported as it arrives. Interrupting the
// run (SIGINT) cancels the engine's context and drains cleanly.
//
// Usage:
//
//	lpo [-model Gemini2.0T] [-rounds 4] [-workers 8] [file.ll | file.wasm]
//	lpo -corpus            run over the synthetic 14-project corpus
//	lpo -wasm-corpus       run over the embedded wasm fixture corpus
//
// WebAssembly inputs (the wasm frontend, internal/wasm):
//
//	A file argument starting with the \0asm magic is decoded as a wasm
//	binary and its functions are lifted to IR before extraction; -wasm
//	forces that interpretation for files without the magic. Functions
//	outside the lifter's integer subset are skipped and tallied — the
//	-stats output reports per-module lift coverage with the top skip
//	reasons. With -isolate DIR, every finding from a wasm input is traced
//	back to its source function and a minimal module (that function plus
//	its transitive callees, nothing else) is written to DIR as
//	<function>.wasm — shrunken provenance for bug reports.
//
// Concurrency flags:
//
//	-workers N   worker pool size (default: one per CPU); results are
//	             deterministic for a fixed -seed regardless of N
//	-queue N     bounded work/result queue size (default 2*workers),
//	             the backpressure window between extraction and the pool
//
// Learning flags (the discovery→learn→re-optimize loop):
//
//	-learn FILE     lift every verified finding into a width-generalized
//	                rule (internal/generalize) and write the surviving
//	                rules to FILE as a JSON rulebook
//	-rulebook FILE  load a previously learned rulebook: its rules join the
//	                optimizer used for extraction filtering and candidate
//	                preprocessing, so past campaigns strengthen this run
//
// Persistence flag (the batch counterpart of the lpod daemon):
//
//	-store DIR      warm-start from a content-addressed store: windows with
//	                a stored finding are served from disk (no provider or
//	                verifier work), the stored counterexample vectors seed
//	                the pool's tier-0 replay, and this run's findings,
//	                learned rules and new vectors are committed back —
//	                sharing one store with lpod and future runs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"repro/internal/alive"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/extract"
	"repro/internal/generalize"
	"repro/internal/llm"
	"repro/internal/opt"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/wasm"
)

// isolateProvenance carves the named function (plus its transitive callees)
// out of the input module and writes the shrunken module to dir.
func isolateProvenance(m *wasm.Module, fn, dir string) (string, error) {
	iso, err := wasm.IsolateByName(m, fn)
	if err != nil {
		return "", err
	}
	data, err := wasm.Encode(iso)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fn+".wasm")
	return path, os.WriteFile(path, data, 0o644)
}

func main() {
	model := flag.String("model", "Gemini2.0T", "model profile to simulate")
	rounds := flag.Int("rounds", 4, "attempts (rounds) per sequence")
	seed := flag.Uint64("seed", 1, "seed")
	useCorpus := flag.Bool("corpus", false, "scan the synthetic corpus instead of a file")
	useWasmCorpus := flag.Bool("wasm-corpus", false, "scan the embedded wasm fixture corpus")
	forceWasm := flag.Bool("wasm", false, "treat the input file as a wasm binary (default: sniff the \\0asm magic)")
	isolateDir := flag.String("isolate", "", "write an isolated .wasm per finding's source function to this directory (wasm inputs only)")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = one per CPU)")
	queue := flag.Int("queue", 0, "bounded queue size (0 = 2*workers)")
	stats := flag.Bool("stats", true, "print per-stage engine statistics")
	learnPath := flag.String("learn", "", "generalize verified findings and write the rulebook to this file")
	rulebookPath := flag.String("rulebook", "", "load a learned rulebook into the optimizer before running")
	storeDir := flag.String("store", "", "warm-start from (and persist to) a content-addressed store directory")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// A loaded rulebook strengthens the whole substrate: the extraction
	// filter ("can the compiler already optimize this?") and the engine's
	// candidate preprocessing both run with the learned rules attached.
	optOptions := opt.Options{}
	if *rulebookPath != "" {
		rules, err := generalize.LoadOptRules(*rulebookPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		optOptions.Rules = opt.NewRuleSet(opt.Options{}).WithRules(rules...)
		fmt.Printf("loaded %d learned rules from %s\n", len(rules), *rulebookPath)
	}

	// A store threads persistence through the whole run: verified outcomes
	// short-circuit via the engine's Lookup hook, stored counterexample
	// vectors seed tier-0 replay, and everything new is committed back.
	var st *store.Store
	var pool *alive.CEPool
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer st.Close()
		pool = alive.NewCEPool()
		loaded, err := service.LoadPool(st, pool)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sst := st.Stats()
		fmt.Printf("store %s: %d findings, %d rules; %d counterexample vectors warm-loaded\n",
			st.Dir(), sst.Findings, sst.Rules, loaded)
	}

	sim := llm.NewSim(*model, *seed)
	cfg := engine.Config{
		Workers:   *workers,
		QueueSize: *queue,
		Rounds:    *rounds,
		Learn:     *learnPath != "" || st != nil,
		Opt:       optOptions,
		Verify:    alive.Options{Samples: 1024, Seed: *seed, Pool: pool},
	}
	if st != nil {
		cfg.Lookup = service.StoreLookup(st)
	}
	eng := engine.New(sim, cfg)

	ex := extract.New(extract.Options{Opt: optOptions})
	var src engine.Source
	// wasmMod holds the decoded input module when the input is a wasm
	// binary, so findings can be traced back and isolated (-isolate).
	var wasmMod *wasm.Module
	switch {
	case *useCorpus:
		src = engine.Corpus(corpus.Options{Seed: *seed}, ex)
	case *useWasmCorpus:
		src = engine.WasmCorpus(ex, eng.Stats())
	case flag.NArg() > 0:
		path := flag.Arg(0)
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *forceWasm || wasm.IsWasm(data) {
			wm, err := wasm.Decode(data)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			wm.Name = path
			wasmMod = wm
			src = engine.WasmModules(ex, eng.Stats(), wm)
		} else {
			src = engine.File(path, ex)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: lpo [flags] file.ll|file.wasm  (or -corpus / -wasm-corpus)")
		os.Exit(2)
	}

	results, engStats := eng.Run(ctx, src)
	found, cached, persisted := 0, 0, 0
	isolated := make(map[string]bool)
	for res := range results {
		switch res.Outcome {
		case engine.Found:
			found++
			fmt.Printf("\n=== missed optimization (%d->%d instrs, %d->%d cycles, round %d) ===\n",
				res.InstrsBefore, res.InstrsAfter, res.CyclesBefore, res.CyclesAfter, res.Round)
			fmt.Printf("--- original ---\n%s--- optimized ---\n%s", res.Src, res.Cand)
			if wasmMod != nil && *isolateDir != "" && res.Seq != nil && !isolated[res.Seq.Func] {
				isolated[res.Seq.Func] = true
				path, err := isolateProvenance(wasmMod, res.Seq.Func, *isolateDir)
				if err != nil {
					fmt.Fprintf(os.Stderr, "isolating %s: %v\n", res.Seq.Func, err)
				} else {
					fmt.Printf("provenance: %s\n", path)
				}
			}
		case engine.Errored:
			fmt.Fprintln(os.Stderr, res.Err)
			os.Exit(1)
		case engine.Panicked:
			// The engine isolated the panic to this window; report it and
			// keep the campaign going instead of failing the whole run.
			fmt.Fprintf(os.Stderr, "window quarantined after panic: %v\n", res.Err)
		}
		if res.Cached {
			cached++
		}
		if st != nil {
			added, err := service.SaveResult(st, res)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if added {
				persisted++
			}
		}
	}
	if st != nil {
		if _, err := service.FlushPool(st, pool); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := st.Commit(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sst := st.Stats()
		fmt.Printf("store: %d new findings persisted (%d served from store); now %d findings, %d rules, %d vectors\n",
			persisted, cached, sst.Findings, sst.Rules, sst.Vectors)
	}
	xs := ex.Stats()
	fmt.Printf("\nextracted %d unique sequences (%d raw, %d duplicates, %d already optimizable)\n",
		xs.Kept, xs.Sequences, xs.Duplicates, xs.Optimizable)
	if *stats {
		engStats.Print(os.Stdout)
	}
	if *learnPath != "" {
		book := eng.Rulebook()
		data, err := book.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*learnPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("learned %d generalized rules -> %s\n", len(book.Rules), *learnPath)
	}
	if ctx.Err() != nil {
		fmt.Println("(interrupted — partial results)")
	}
	fmt.Printf("%d verified missed optimizations found with %s\n", found, *model)
}
