// Command lpo-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	lpo-bench -table 1|2|3|4|5      regenerate one table
//	lpo-bench -figure 4|5           regenerate one figure
//	lpo-bench -learned              learned-rule closure table (beyond the
//	                                paper: discovery learns a rulebook, then
//	                                the corpus is re-optimized with it)
//	lpo-bench -json FILE            write the machine-readable perf snapshot
//	                                (verify/interp/dispatch hot paths; see
//	                                doc.go "Performance" for the schema)
//	lpo-bench -json FILE -against REF
//	                                additionally compare the fresh snapshot
//	                                against the committed reference REF and
//	                                exit non-zero if any tracked workload
//	                                regressed by more than 2x ns/op or grew
//	                                past 2x allocs/op (the CI perf guard;
//	                                tune with -tolerance / -alloc-tolerance)
//	lpo-bench -all                  everything (default)
//	lpo-bench -rounds N -n N -seed N  sizing knobs
//	lpo-bench -workers N            engine worker pool for the RQ runs
//	                                (0 = one per CPU; results are
//	                                deterministic for a fixed seed
//	                                regardless of N)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "regenerate table N (1-5)")
	figure := flag.Int("figure", 0, "regenerate figure N (4 or 5)")
	learned := flag.Bool("learned", false, "run the learned-rule closure experiment")
	jsonOut := flag.String("json", "", "write the perf snapshot (ns/op + allocs/op of the verify/interp/dispatch hot paths) to this file")
	against := flag.String("against", "", "reference snapshot to compare the fresh -json snapshot against (fails on regression)")
	tolerance := flag.Float64("tolerance", 2.0, "ns/op regression factor tolerated by -against before failing")
	allocTolerance := flag.Float64("alloc-tolerance", 2.0, "allocs/op growth factor tolerated by -against before failing")
	all := flag.Bool("all", false, "regenerate everything")
	rounds := flag.Int("rounds", 5, "discovery rounds (RQ1: per model; -learned: per sequence)")
	n := flag.Int("n", 250, "RQ3 sampled sequences (paper: 5000)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = one per CPU)")
	flag.Parse()

	if *jsonOut != "" {
		snap := experiments.RunPerfSnapshot()
		data, err := snap.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, b := range snap.Benches {
			fmt.Printf("%-24s %14.1f ns/op %8d allocs/op %10d B/op\n",
				b.Name, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp)
		}
		fmt.Printf("%-24s pool %d, special %d, random %d\n",
			"tier_kills", snap.TierKills.Pool, snap.TierKills.Special, snap.TierKills.Random)
		fmt.Printf("%-24s %.1f%% (%d batched, %d fallback)\n",
			"batch_coverage", 100*snap.BatchCoverage.Coverage,
			snap.BatchCoverage.Batched, snap.BatchCoverage.Fallback)
		if *against != "" {
			refData, err := os.ReadFile(*against)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			ref, err := experiments.DecodePerfSnapshot(refData)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if regressions := experiments.ComparePerf(snap, ref, *tolerance, *allocTolerance); len(regressions) > 0 {
				fmt.Fprintf(os.Stderr, "perf regression vs %s:\n", *against)
				for _, r := range regressions {
					fmt.Fprintln(os.Stderr, "  "+r)
				}
				os.Exit(1)
			}
			fmt.Printf("no regression vs %s (tolerance %.1fx ns/op, %.1fx allocs/op)\n",
				*against, *tolerance, *allocTolerance)
		}
		return
	}
	if *learned {
		rep, err := experiments.RunLearnedClosure(experiments.LearnedClosureOptions{
			Seed:       *seed,
			Rounds:     *rounds,
			Workers:    *workers,
			CorpusOpts: corpus.Options{Seed: *seed},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.Print(os.Stdout)
		return
	}
	if *table == 0 && *figure == 0 {
		*all = true
	}
	w := os.Stdout
	runTable := func(k int) {
		switch k {
		case 1:
			experiments.PrintTable1(w)
		case 2:
			experiments.RunRQ1(experiments.RQ1Options{Rounds: *rounds, Seed: *seed, Workers: *workers}).Print(w)
		case 3:
			experiments.RunRQ2(experiments.RQ2Options{Seed: *seed, Workers: *workers}).Print(w)
		case 4:
			experiments.RunRQ3(experiments.RQ3Options{Sequences: *n, Seed: *seed, Workers: *workers}).Print(w)
		case 5:
			experiments.RunTable5(*seed).Print(w)
		default:
			fmt.Fprintf(os.Stderr, "unknown table %d\n", k)
			os.Exit(2)
		}
	}
	runFigure := func(k int) {
		switch k {
		case 4:
			if err := experiments.PrintFigure4(w, *seed); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		case 5:
			rep, err := experiments.RunFigure5(500)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rep.Print(w)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %d\n", k)
			os.Exit(2)
		}
	}
	if *all {
		for _, k := range []int{1, 2, 3, 4, 5} {
			runTable(k)
			fmt.Fprintln(w)
		}
		runFigure(4)
		runFigure(5)
		return
	}
	if *table != 0 {
		runTable(*table)
	}
	if *figure != 0 {
		runFigure(*figure)
	}
}
